//! Structured event tracing: zero-cost-when-off observability.
//!
//! A [`Tracer`] is owned by the engine and threaded through [`Ctx`] so any
//! component can emit structured events — flit arrivals, stitch/trim/
//! sequence decisions, MSHR fills, page-table walks, cache-miss lifetimes —
//! during its tick. When tracing is disabled every emit call is a single
//! predictable branch and **no allocation happens**; when enabled, events
//! accumulate in a flat buffer and are exported after the run as
//! Chrome-trace/Perfetto JSON ([`Trace::to_chrome_json`]) or compact JSONL
//! ([`Trace::to_jsonl`]).
//!
//! Output size is bounded by a [`TraceConfig`] filter: per-component
//! (substring match on the component name), per-event-class (see
//! [`EventClass`]), and by cycle range. The filter is resolved once per
//! track / once per tick, not per event.
//!
//! [`Ctx`]: crate::Ctx

use crate::snapshot::{Snap, SnapshotError, SnapshotReader, SnapshotWriter};
use crate::Cycle;

/// Coarse event category, used both for filtering and as the Chrome-trace
/// `cat` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum EventClass {
    /// Flit ingress/egress on switches and ports.
    Flit = 0,
    /// Stitching decisions (absorption, parent ejection, un-stitching).
    Stitch = 1,
    /// Selective flit pooling (side-slot residency and expiry).
    Pool = 2,
    /// Trimming decisions (sectored cross-cluster fills).
    Trim = 3,
    /// Sequencing decisions (PTW-priority service order).
    Seq = 4,
    /// MSHR allocate/merge/fill activity.
    Mshr = 5,
    /// Page-table walk lifetimes.
    Ptw = 6,
    /// Cache miss lifetimes (L1/L2).
    Cache = 7,
}

/// All event classes, in declaration order.
pub const ALL_CLASSES: [EventClass; 8] = [
    EventClass::Flit,
    EventClass::Stitch,
    EventClass::Pool,
    EventClass::Trim,
    EventClass::Seq,
    EventClass::Mshr,
    EventClass::Ptw,
    EventClass::Cache,
];

impl EventClass {
    /// Stable lower-case label (used in filters and JSON output).
    pub fn label(self) -> &'static str {
        match self {
            EventClass::Flit => "flit",
            EventClass::Stitch => "stitch",
            EventClass::Pool => "pool",
            EventClass::Trim => "trim",
            EventClass::Seq => "seq",
            EventClass::Mshr => "mshr",
            EventClass::Ptw => "ptw",
            EventClass::Cache => "cache",
        }
    }

    /// Parses a label produced by [`EventClass::label`].
    pub fn from_label(s: &str) -> Option<EventClass> {
        ALL_CLASSES.iter().copied().find(|c| c.label() == s)
    }

    #[inline]
    fn bit(self) -> u32 {
        1 << (self as u32)
    }
}

/// Event phase, mirroring the Chrome-trace phase field.
///
/// Miss/walk lifetimes use async begin/end (Chrome `b`/`e`) rather than
/// stack-scoped `B`/`E` because many same-named lifetimes overlap on one
/// track; async events are paired by `id` instead of nesting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// A point-in-time event (Chrome `i`).
    Instant,
    /// Start of an async span (Chrome `b`), paired by `id`.
    Begin,
    /// End of an async span (Chrome `e`), paired by `id`.
    End,
    /// A sampled counter value (Chrome `C`).
    Counter,
}

impl Phase {
    fn chrome(self) -> char {
        match self {
            Phase::Instant => 'i',
            Phase::Begin => 'b',
            Phase::End => 'e',
            Phase::Counter => 'C',
        }
    }

    fn label(self) -> &'static str {
        match self {
            Phase::Instant => "i",
            Phase::Begin => "b",
            Phase::End => "e",
            Phase::Counter => "C",
        }
    }
}

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Emission cycle.
    pub cycle: Cycle,
    /// Track index (the emitting component; see [`Trace::tracks`]).
    pub track: u32,
    /// Event category.
    pub class: EventClass,
    /// Event phase.
    pub phase: Phase,
    /// Event name, e.g. `"flit.rx"` or `"ptw.walk"`.
    pub name: &'static str,
    /// Correlation id (packet id, access id, virtual page number, …);
    /// pairs `Begin`/`End` events.
    pub id: u64,
    /// Free payload (bytes, sector index, waiter count, counter value, …).
    pub value: u64,
}

/// Filter describing which events a [`Tracer`] keeps.
///
/// Parsed from the `--trace-filter` flag syntax: semicolon-separated
/// clauses `comp=<substr>,<substr>`, `class=<label>,<label>` and
/// `cycles=<first>..<last>`. An empty string (or absent clause) means
/// "everything".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceConfig {
    /// Component-name substrings; a track is enabled if its name contains
    /// any of them. Empty = all components.
    pub components: Vec<String>,
    /// Bitmask over [`EventClass`] (`1 << class`).
    pub class_mask: u32,
    /// First cycle (inclusive) to record.
    pub first_cycle: Cycle,
    /// Last cycle (inclusive) to record.
    pub last_cycle: Cycle,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            components: Vec::new(),
            class_mask: u32::MAX,
            first_cycle: 0,
            last_cycle: Cycle::MAX,
        }
    }
}

impl TraceConfig {
    /// Parses the `--trace-filter` syntax, e.g.
    /// `"comp=switch,cu; class=flit,ptw; cycles=0..5000"`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on an unknown clause, unknown
    /// class label, or malformed cycle range.
    pub fn parse(spec: &str) -> Result<TraceConfig, String> {
        let mut cfg = TraceConfig::default();
        for clause in spec.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let (key, val) = clause
                .split_once('=')
                .ok_or_else(|| format!("trace filter clause `{clause}` is missing `=`"))?;
            match key.trim() {
                "comp" => {
                    cfg.components = val
                        .split(',')
                        .map(|s| s.trim().to_string())
                        .filter(|s| !s.is_empty())
                        .collect();
                }
                "class" => {
                    let mut mask = 0u32;
                    for label in val.split(',') {
                        let label = label.trim();
                        if label.is_empty() {
                            continue;
                        }
                        let class = EventClass::from_label(label).ok_or_else(|| {
                            format!(
                                "unknown event class `{label}` (expected one of: {})",
                                ALL_CLASSES.map(EventClass::label).join(", ")
                            )
                        })?;
                        mask |= class.bit();
                    }
                    cfg.class_mask = mask;
                }
                "cycles" => {
                    let (lo, hi) = val
                        .split_once("..")
                        .ok_or_else(|| format!("cycle range `{val}` must look like 100..5000"))?;
                    cfg.first_cycle = lo
                        .trim()
                        .parse()
                        .map_err(|_| format!("bad first cycle `{lo}`"))?;
                    let hi = hi.trim();
                    cfg.last_cycle = if hi.is_empty() {
                        Cycle::MAX
                    } else {
                        hi.parse().map_err(|_| format!("bad last cycle `{hi}`"))?
                    };
                }
                other => return Err(format!("unknown trace filter key `{other}`")),
            }
        }
        Ok(cfg)
    }

    /// True if a component with this name passes the component filter.
    pub fn allows_component(&self, name: &str) -> bool {
        self.components.is_empty() || self.components.iter().any(|p| name.contains(p))
    }
}

/// The event sink threaded through [`Ctx`](crate::Ctx).
///
/// A disabled tracer (`Tracer::off()`, the default) rejects every emit
/// with a single branch and never allocates. The engine keeps the tracer's
/// notion of the current cycle and the *focused* track (the component
/// being ticked) up to date, so emit calls carry only event-local data.
#[derive(Debug)]
pub struct Tracer {
    on: bool,
    class_mask: u32,
    first_cycle: Cycle,
    last_cycle: Cycle,
    now: Cycle,
    /// Track currently being ticked; events are attributed to it.
    // lint:allow(snapshot-field-parity) transient per-tick focus; the engine re-establishes it before the next tick, so load resets it
    focus: u32,
    /// Cached `track_enabled[focus] && on`: makes `wants` one load + mask.
    // lint:allow(snapshot-field-parity) transient per-tick focus; the engine re-establishes it before the next tick, so load resets it
    focus_live: bool,
    tracks: Vec<String>,
    track_enabled: Vec<bool>,
    events: Vec<Event>,
    filter: TraceConfig,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::off()
    }
}

impl Tracer {
    /// A disabled tracer: every emit is a no-op, nothing is buffered.
    pub fn off() -> Tracer {
        Tracer {
            on: false,
            class_mask: 0,
            first_cycle: 0,
            last_cycle: 0,
            now: 0,
            focus: 0,
            focus_live: false,
            tracks: Vec::new(),
            track_enabled: Vec::new(),
            events: Vec::new(),
            filter: TraceConfig::default(),
        }
    }

    /// An enabled tracer with the given filter. Tracks are registered
    /// afterwards via [`Tracer::register_track`].
    pub fn new(filter: TraceConfig) -> Tracer {
        Tracer {
            on: true,
            class_mask: filter.class_mask,
            first_cycle: filter.first_cycle,
            last_cycle: filter.last_cycle,
            now: 0,
            focus: 0,
            focus_live: false,
            tracks: Vec::new(),
            track_enabled: Vec::new(),
            events: Vec::new(),
            filter,
        }
    }

    /// True when the tracer records events at all.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.on
    }

    /// Registers a named track (one per component) and returns its index.
    /// The component filter is resolved here, once.
    pub fn register_track(&mut self, name: &str) -> u32 {
        let id = self.tracks.len() as u32;
        self.track_enabled.push(self.filter.allows_component(name));
        self.tracks.push(name.to_string());
        id
    }

    /// Sets the current cycle (called by the engine each step).
    #[inline]
    pub fn set_now(&mut self, cycle: Cycle) {
        self.now = cycle;
    }

    /// Focuses a track: subsequent events are attributed to it. Called by
    /// the engine before each component tick; a no-op when disabled.
    #[inline]
    pub fn focus(&mut self, track: u32) {
        if !self.on {
            return;
        }
        self.focus = track;
        self.focus_live = self
            .track_enabled
            .get(track as usize)
            .copied()
            .unwrap_or(true);
    }

    /// True if an event of `class` would be recorded right now. Callers
    /// with non-trivial event construction should check this first; the
    /// emit methods perform the same check internally.
    #[inline]
    pub fn wants(&self, class: EventClass) -> bool {
        self.focus_live
            && (self.class_mask & class.bit()) != 0
            && self.now >= self.first_cycle
            && self.now <= self.last_cycle
    }

    #[inline]
    fn push(&mut self, class: EventClass, phase: Phase, name: &'static str, id: u64, value: u64) {
        self.events.push(Event {
            cycle: self.now,
            track: self.focus,
            class,
            phase,
            name,
            id,
            value,
        });
    }

    /// Emits a point-in-time event.
    #[inline]
    pub fn instant(&mut self, class: EventClass, name: &'static str, id: u64, value: u64) {
        if self.wants(class) {
            self.push(class, Phase::Instant, name, id, value);
        }
    }

    /// Opens an async span, paired with [`Tracer::end`] by `id`.
    #[inline]
    pub fn begin(&mut self, class: EventClass, name: &'static str, id: u64) {
        if self.wants(class) {
            self.push(class, Phase::Begin, name, id, 0);
        }
    }

    /// Closes the async span opened with the same `class`/`name`/`id`.
    #[inline]
    pub fn end(&mut self, class: EventClass, name: &'static str, id: u64) {
        if self.wants(class) {
            self.push(class, Phase::End, name, id, 0);
        }
    }

    /// Emits a sampled counter value.
    #[inline]
    pub fn counter(&mut self, class: EventClass, name: &'static str, value: u64) {
        if self.wants(class) {
            self.push(class, Phase::Counter, name, 0, value);
        }
    }

    /// Number of buffered events.
    pub fn event_count(&self) -> usize {
        self.events.len()
    }

    /// Extracts the recorded trace, leaving the tracer empty (but still
    /// enabled and with its tracks registered).
    pub fn take(&mut self) -> Trace {
        Trace {
            tracks: self.tracks.clone(),
            events: std::mem::take(&mut self.events),
        }
    }

    /// A per-domain shard for parallel execution: same filter, same track
    /// table (so track ids stay global), empty event buffer. Shard events
    /// are merged back with [`Tracer::absorb_events`] in canonical order
    /// at epoch barriers.
    pub(crate) fn shard(&self) -> Tracer {
        Tracer {
            on: self.on,
            class_mask: self.class_mask,
            first_cycle: self.first_cycle,
            last_cycle: self.last_cycle,
            now: self.now,
            focus: 0,
            focus_live: false,
            tracks: self.tracks.clone(),
            track_enabled: self.track_enabled.clone(),
            events: Vec::new(),
            filter: self.filter.clone(),
        }
    }

    /// Drains the buffered events (shard side of the epoch merge).
    pub(crate) fn drain_events(&mut self) -> Vec<Event> {
        std::mem::take(&mut self.events)
    }

    /// Appends already-ordered events (main-tracer side of the merge).
    pub(crate) fn absorb_events(&mut self, events: impl IntoIterator<Item = Event>) {
        self.events.extend(events);
    }
}

impl Snap for TraceConfig {
    fn save(&self, w: &mut SnapshotWriter) {
        self.components.save(w);
        self.class_mask.save(w);
        self.first_cycle.save(w);
        self.last_cycle.save(w);
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(TraceConfig {
            components: Snap::load(r)?,
            class_mask: Snap::load(r)?,
            first_cycle: Snap::load(r)?,
            last_cycle: Snap::load(r)?,
        })
    }
}

/// The tracer snapshots everything observable: its filter, track table
/// and every buffered event, so a restored run's trace output is
/// byte-identical to the uninterrupted run's from cycle 0 onward.
/// The transient tick focus is reset (the engine re-focuses before every
/// tick). Event names are `&'static str`s; loading re-interns each
/// distinct name once (leaked, like string literals — the name set is a
/// small fixed vocabulary).
impl Snap for Tracer {
    fn save(&self, w: &mut SnapshotWriter) {
        self.on.save(w);
        self.class_mask.save(w);
        self.first_cycle.save(w);
        self.last_cycle.save(w);
        self.now.save(w);
        self.tracks.save(w);
        self.track_enabled.save(w);
        self.filter.save(w);
        w.put_len(self.events.len());
        for ev in &self.events {
            ev.cycle.save(w);
            ev.track.save(w);
            w.put_u8(u8::try_from(ev.class as u32).expect("eight event classes"));
            w.put_u8(match ev.phase {
                Phase::Instant => 0,
                Phase::Begin => 1,
                Phase::End => 2,
                Phase::Counter => 3,
            });
            w.put_str(ev.name);
            ev.id.save(w);
            ev.value.save(w);
        }
    }

    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let on = Snap::load(r)?;
        let class_mask = Snap::load(r)?;
        let first_cycle = Snap::load(r)?;
        let last_cycle = Snap::load(r)?;
        let now = Snap::load(r)?;
        let tracks: Vec<String> = Snap::load(r)?;
        let track_enabled: Vec<bool> = Snap::load(r)?;
        if track_enabled.len() != tracks.len() {
            return Err(SnapshotError::Corrupt(format!(
                "tracer has {} tracks but {} enable flags",
                tracks.len(),
                track_enabled.len()
            )));
        }
        let filter = Snap::load(r)?;
        let n = r.get_len()?;
        let mut interned: std::collections::BTreeMap<String, &'static str> =
            std::collections::BTreeMap::new();
        let mut events = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            let cycle = Snap::load(r)?;
            let track = Snap::load(r)?;
            let class_tag = r.get_u8()?;
            let class = ALL_CLASSES
                .get(usize::from(class_tag))
                .copied()
                .ok_or_else(|| SnapshotError::Corrupt(format!("EventClass tag {class_tag}")))?;
            let phase = match r.get_u8()? {
                0 => Phase::Instant,
                1 => Phase::Begin,
                2 => Phase::End,
                3 => Phase::Counter,
                tag => return Err(SnapshotError::Corrupt(format!("Phase tag {tag}"))),
            };
            let name_text = r.get_str()?;
            let name = match interned.get(name_text.as_str()) {
                Some(&s) => s,
                None => {
                    let leaked: &'static str = Box::leak(name_text.clone().into_boxed_str());
                    interned.insert(name_text, leaked);
                    leaked
                }
            };
            events.push(Event {
                cycle,
                track,
                class,
                phase,
                name,
                id: Snap::load(r)?,
                value: Snap::load(r)?,
            });
        }
        Ok(Tracer {
            on,
            class_mask,
            first_cycle,
            last_cycle,
            now,
            focus: 0,
            focus_live: false,
            tracks,
            track_enabled,
            events,
            filter,
        })
    }
}

/// A completed trace: named tracks plus the flat event list, ready for
/// export.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Track names, indexed by [`Event::track`].
    pub tracks: Vec<String>,
    /// All recorded events, in emission (deterministic) order.
    pub events: Vec<Event>,
}

impl Trace {
    /// Renders the trace as Chrome-trace/Perfetto JSON (the
    /// `{"traceEvents": [...]}` object format). Load it in
    /// <https://ui.perfetto.dev> or `chrome://tracing`; one timestamp unit
    /// equals one simulated cycle.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.events.len() * 96);
        out.push_str("{\"traceEvents\":[");
        let mut first = true;
        for (tid, name) in self.tracks.iter().enumerate() {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n{{\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":{}}}}}",
                json_string(name)
            ));
        }
        for ev in &self.events {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("\n{");
            out.push_str(&format!(
                "\"ph\":\"{}\",\"pid\":0,\"tid\":{},\"ts\":{},\"cat\":\"{}\",\"name\":{}",
                ev.phase.chrome(),
                ev.track,
                ev.cycle,
                ev.class.label(),
                json_string(ev.name)
            ));
            match ev.phase {
                Phase::Instant => {
                    out.push_str(&format!(
                        ",\"s\":\"t\",\"args\":{{\"id\":{},\"value\":{}}}",
                        ev.id, ev.value
                    ));
                }
                Phase::Begin | Phase::End => {
                    out.push_str(&format!(",\"id\":{}", ev.id));
                }
                Phase::Counter => {
                    out.push_str(&format!(",\"args\":{{\"value\":{}}}", ev.value));
                }
            }
            out.push('}');
        }
        out.push_str("\n]}\n");
        out
    }

    /// Renders the trace as compact JSONL: one JSON object per line with
    /// keys `cycle`, `track`, `class`, `phase`, `name`, `id`, `value`.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 96);
        for ev in &self.events {
            let track = self
                .tracks
                .get(ev.track as usize)
                .map_or("?", String::as_str);
            out.push_str(&format!(
                "{{\"cycle\":{},\"track\":{},\"class\":\"{}\",\"phase\":\"{}\",\
                 \"name\":{},\"id\":{},\"value\":{}}}\n",
                ev.cycle,
                json_string(track),
                ev.class.label(),
                ev.phase.label(),
                json_string(ev.name),
                ev.id,
                ev.value
            ));
        }
        out
    }

    /// Number of events with the given name (any phase).
    pub fn count(&self, name: &str) -> usize {
        self.events.iter().filter(|e| e.name == name).count()
    }

    /// Number of events with the given name and phase.
    pub fn count_phase(&self, name: &str, phase: Phase) -> usize {
        self.events
            .iter()
            .filter(|e| e.name == name && e.phase == phase)
            .count()
    }
}

/// Escapes `s` as a JSON string literal, including the surrounding quotes.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

pub mod json {
    //! A minimal recursive-descent JSON parser, used by the trace validity
    //! tests and the CI perf gate. Hand-rolled because the workspace is
    //! hermetic (no serde).

    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// Any JSON number, held as `f64`.
        Num(f64),
        /// A string (escapes resolved).
        Str(String),
        /// An array.
        Arr(Vec<Value>),
        /// An object; key order preserved.
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        /// Object member lookup (first match).
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        /// The value as an array, if it is one.
        pub fn as_arr(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(items) => Some(items),
                _ => None,
            }
        }

        /// The value as a string, if it is one.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        /// The value as a number, if it is one.
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Num(n) => Some(*n),
                _ => None,
            }
        }
    }

    /// Parses a complete JSON document.
    ///
    /// # Errors
    ///
    /// Returns a message with the byte offset of the first syntax error,
    /// including trailing garbage after the document.
    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
        if *pos < bytes.len() && bytes[*pos] == b {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {pos}", b as char))
        }
    }

    fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            None => Err("unexpected end of input".to_string()),
            Some(b'{') => parse_object(bytes, pos),
            Some(b'[') => parse_array(bytes, pos),
            Some(b'"') => parse_string(bytes, pos).map(Value::Str),
            Some(b't') => parse_lit(bytes, pos, "true", Value::Bool(true)),
            Some(b'f') => parse_lit(bytes, pos, "false", Value::Bool(false)),
            Some(b'n') => parse_lit(bytes, pos, "null", Value::Null),
            Some(_) => parse_number(bytes, pos),
        }
    }

    fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
        if bytes[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {pos}"))
        }
    }

    fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        if bytes.get(*pos) == Some(&b'-') {
            *pos += 1;
        }
        while *pos < bytes.len()
            && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        {
            *pos += 1;
        }
        let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number `{text}` at byte {start}"))
    }

    fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(bytes, pos, b'"')?;
        let mut out = String::new();
        loop {
            match bytes.get(*pos) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    let esc = *bytes
                        .get(*pos)
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    *pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = bytes
                                .get(*pos..*pos + 4)
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            *pos += 4;
                            // Surrogate pairs are not produced by our
                            // emitters; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape `\\{}`", other as char)),
                    }
                }
                Some(&b) if b < 0x20 => {
                    return Err(format!("raw control byte 0x{b:02x} in string"));
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                    let c = rest
                        .chars()
                        .next()
                        .expect("peeked Some(_) above, so at least one scalar remains");
                    out.push(c);
                    *pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(bytes, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(parse_value(bytes, pos)?);
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {pos}")),
            }
        }
    }

    fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(bytes, pos, b'{')?;
        let mut members = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            skip_ws(bytes, pos);
            let key = parse_string(bytes, pos)?;
            skip_ws(bytes, pos);
            expect(bytes, pos, b':')?;
            let value = parse_value(bytes, pos)?;
            members.push((key, value));
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::json::{parse, Value};
    use super::*;

    fn live_tracer() -> Tracer {
        let mut t = Tracer::new(TraceConfig::default());
        let track = t.register_track("unit");
        t.focus(track);
        t
    }

    #[test]
    fn disabled_tracer_buffers_nothing_and_does_not_allocate() {
        let mut t = Tracer::off();
        t.focus(0);
        t.set_now(17);
        for i in 0..1000 {
            t.instant(EventClass::Flit, "flit.rx", i, 64);
            t.begin(EventClass::Ptw, "ptw.walk", i);
            t.end(EventClass::Ptw, "ptw.walk", i);
            t.counter(EventClass::Flit, "occupancy", i);
        }
        assert_eq!(t.event_count(), 0);
        // No allocation: the event buffer never grew past its (empty)
        // initial state.
        assert_eq!(t.events.capacity(), 0);
        assert!(!t.is_enabled());
    }

    #[test]
    fn class_and_cycle_filters_apply() {
        let cfg = TraceConfig::parse("class=flit; cycles=10..20").unwrap();
        let mut t = Tracer::new(cfg);
        let track = t.register_track("switch0");
        t.focus(track);
        t.set_now(5);
        t.instant(EventClass::Flit, "flit.rx", 1, 0); // before range
        t.set_now(15);
        t.instant(EventClass::Flit, "flit.rx", 2, 0); // kept
        t.instant(EventClass::Ptw, "ptw.walk", 3, 0); // wrong class
        t.set_now(25);
        t.instant(EventClass::Flit, "flit.rx", 4, 0); // after range
        assert_eq!(t.event_count(), 1);
        assert_eq!(t.take().events[0].id, 2);
    }

    #[test]
    fn component_filter_applies_per_track() {
        let cfg = TraceConfig::parse("comp=switch").unwrap();
        let mut t = Tracer::new(cfg);
        let sw = t.register_track("gpu0.switch");
        let cu = t.register_track("gpu0.cu1");
        t.set_now(1);
        t.focus(sw);
        t.instant(EventClass::Flit, "flit.rx", 1, 0);
        t.focus(cu);
        t.instant(EventClass::Flit, "flit.rx", 2, 0);
        let trace = t.take();
        assert_eq!(trace.events.len(), 1);
        assert_eq!(trace.events[0].track, sw);
    }

    #[test]
    fn parse_filter_rejects_garbage() {
        assert!(TraceConfig::parse("class=bogus").is_err());
        assert!(TraceConfig::parse("cycles=abc..10").is_err());
        assert!(TraceConfig::parse("nonsense").is_err());
        assert!(TraceConfig::parse("what=ever").is_err());
        let open = TraceConfig::parse("cycles=100..").unwrap();
        assert_eq!(open.first_cycle, 100);
        assert_eq!(open.last_cycle, Cycle::MAX);
    }

    #[test]
    fn json_string_escaping_round_trips() {
        let nasty = "a\"b\\c\nd\te\r\u{08}\u{0c}\u{01}∞ é";
        let encoded = json_string(nasty);
        match parse(&encoded).unwrap() {
            Value::Str(s) => assert_eq!(s, nasty),
            other => panic!("expected string, got {other:?}"),
        }
    }

    #[test]
    fn chrome_trace_output_is_valid_json() {
        let mut t = Tracer::new(TraceConfig::default());
        let track = t.register_track("weird \"name\"\nwith\tescapes");
        t.focus(track);
        t.set_now(3);
        t.instant(EventClass::Stitch, "stitch.eject", 7, 2);
        t.begin(EventClass::Cache, "l2.miss", 42);
        t.set_now(9);
        t.end(EventClass::Cache, "l2.miss", 42);
        t.counter(EventClass::Flit, "occupancy", 11);
        let doc = parse(&t.take().to_chrome_json()).expect("valid JSON");
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        // 1 metadata record + 4 events.
        assert_eq!(events.len(), 5);
        assert_eq!(events[0].get("ph").unwrap().as_str(), Some("M"));
        assert_eq!(
            events[0].get("args").unwrap().get("name").unwrap().as_str(),
            Some("weird \"name\"\nwith\tescapes")
        );
        let begin = &events[2];
        assert_eq!(begin.get("ph").unwrap().as_str(), Some("b"));
        assert_eq!(begin.get("id").unwrap().as_f64(), Some(42.0));
        assert_eq!(begin.get("cat").unwrap().as_str(), Some("cache"));
        let counter = &events[4];
        assert_eq!(counter.get("ph").unwrap().as_str(), Some("C"));
        assert_eq!(
            counter.get("args").unwrap().get("value").unwrap().as_f64(),
            Some(11.0)
        );
    }

    #[test]
    fn jsonl_lines_are_individually_valid() {
        let mut t = live_tracer();
        t.set_now(1);
        t.instant(EventClass::Trim, "trim.request", 5, 3);
        t.begin(EventClass::Ptw, "ptw.walk", 9);
        let jsonl = t.take().to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let v = parse(line).expect("valid JSONL line");
            assert_eq!(v.get("track").unwrap().as_str(), Some("unit"));
        }
    }

    #[test]
    fn event_counts_by_name_and_phase() {
        let mut t = live_tracer();
        t.set_now(1);
        t.begin(EventClass::Ptw, "ptw.walk", 1);
        t.begin(EventClass::Ptw, "ptw.walk", 2);
        t.end(EventClass::Ptw, "ptw.walk", 1);
        let trace = t.take();
        assert_eq!(trace.count("ptw.walk"), 3);
        assert_eq!(trace.count_phase("ptw.walk", Phase::Begin), 2);
        assert_eq!(trace.count_phase("ptw.walk", Phase::End), 1);
    }

    #[test]
    fn parser_handles_numbers_and_nesting() {
        let v = parse(r#"{"a":[1,-2.5,3e2,true,false,null],"b":{"c":"d"}}"#).unwrap();
        let a = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[1].as_f64(), Some(-2.5));
        assert_eq!(a[2].as_f64(), Some(300.0));
        assert_eq!(a[3], Value::Bool(true));
        assert_eq!(a[5], Value::Null);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("d"));
        assert!(parse(r#"{"a":}"#).is_err());
        assert!(parse(r#"[1,2"#).is_err());
        assert!(parse("{} trailing").is_err());
    }
}
