//! Versioned, dependency-free binary serialization of simulation state.
//!
//! A *snapshot* is the byte-exact dynamic state of a paused simulation:
//! every component's internal queues and statistics, the engine's event
//! wheel and in-flight messages, and the structured-event tracer. The
//! encoding is little-endian, length-prefixed where variable, and fully
//! deterministic — the same paused state always encodes to the same
//! bytes, so `fnv1a64` over the encoding is a cheap state fingerprint
//! (see [`crate::Engine::state_hash`]).
//!
//! The format is versioned: every snapshot file starts with
//! [`SNAPSHOT_MAGIC`] and [`SNAPSHOT_VERSION`], and a reader rejects a
//! mismatch loudly instead of deserializing garbage state (see
//! DESIGN.md §3.4).
//!
//! Serialization is structured around the [`Snap`] trait (implemented
//! here for primitives, standard containers and the `proto` data types)
//! plus the [`crate::Component::save_state`]/
//! [`crate::Component::load_state`] pair that every snapshottable
//! component implements.

use std::collections::{BTreeMap, VecDeque};

use netcrafter_proto::access::{AccessKind, CoalescedAccess, WavefrontOp, WavefrontTrace};
use netcrafter_proto::collections::OrderedMap;
use netcrafter_proto::ids::IdAlloc;
use netcrafter_proto::message::Origin;
use netcrafter_proto::packet::{PacketPayload, TrimInfo};
use netcrafter_proto::{
    AccessId, Chunk, ClusterId, CtaId, CuId, Flit, GpuId, Histogram, LatencyStat, LineAddr,
    LineMask, MemReq, MemRsp, Message, Metrics, NodeId, PAddr, Packet, PacketId, PacketKind,
    TimeSeries, TrafficClass, TransReq, TransRsp, VAddr, WavefrontId,
};

/// First four bytes of every snapshot: `"NCSP"` as a little-endian u32.
pub const SNAPSHOT_MAGIC: u32 = 0x5053_434E;

/// Current snapshot format version. Bump whenever the encoding of any
/// serialized structure changes; old snapshots then fail loudly with
/// [`SnapshotError::VersionMismatch`] instead of restoring garbage.
pub const SNAPSHOT_VERSION: u32 = 3;

/// Why a snapshot could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The buffer does not start with [`SNAPSHOT_MAGIC`] — not a
    /// snapshot at all, or corrupted at the very start.
    BadMagic(u32),
    /// The snapshot was written by a different format version.
    VersionMismatch {
        /// Version found in the file.
        found: u32,
        /// Version this build reads and writes.
        expected: u32,
    },
    /// The buffer ended before the value being read was complete.
    Truncated {
        /// Byte offset at which the read started.
        offset: usize,
        /// Bytes the read needed.
        wanted: usize,
    },
    /// The bytes decoded, but the value they describe is invalid (bad
    /// enum tag, component-name mismatch, malformed embedded text, …).
    Corrupt(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BadMagic(found) => {
                write!(
                    f,
                    "not a snapshot: magic {found:#010x} (expected {SNAPSHOT_MAGIC:#010x})"
                )
            }
            SnapshotError::VersionMismatch { found, expected } => write!(
                f,
                "snapshot version mismatch: file has v{found}, this build reads v{expected}; \
                 re-create the checkpoint with the current binary"
            ),
            SnapshotError::Truncated { offset, wanted } => {
                write!(
                    f,
                    "snapshot truncated: needed {wanted} byte(s) at offset {offset}"
                )
            }
            SnapshotError::Corrupt(why) => write!(f, "snapshot corrupt: {why}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Append-only little-endian encoder for snapshot bytes.
#[derive(Debug, Default)]
pub struct SnapshotWriter {
    buf: Vec<u8>,
}

impl SnapshotWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes written so far.
    pub fn position(&self) -> usize {
        self.buf.len()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Writes one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a little-endian u16.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as a u64 (lengths, counts).
    pub fn put_len(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Writes a bool as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Writes an `f64` by exact bit pattern, so restore is bit-identical.
    pub fn put_f64_bits(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Writes a length-prefixed byte slice.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_len(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }
}

/// Bounds-checked little-endian decoder over a snapshot byte slice.
#[derive(Debug)]
pub struct SnapshotReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapshotReader<'a> {
    /// Creates a reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Current byte offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated {
                offset: self.pos,
                wanted: n,
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian u16.
    pub fn get_u16(&mut self) -> Result<u16, SnapshotError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes(
            b.try_into().expect("take returned 2 bytes"),
        ))
    }

    /// Reads a little-endian u32.
    pub fn get_u32(&mut self) -> Result<u32, SnapshotError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(
            b.try_into().expect("take returned 4 bytes"),
        ))
    }

    /// Reads a little-endian u64.
    pub fn get_u64(&mut self) -> Result<u64, SnapshotError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(
            b.try_into().expect("take returned 8 bytes"),
        ))
    }

    /// Reads a length/count written by [`SnapshotWriter::put_len`],
    /// rejecting values that could not possibly fit in the remaining
    /// buffer (guards allocations against corrupt length fields).
    pub fn get_len(&mut self) -> Result<usize, SnapshotError> {
        let v = self.get_u64()?;
        let n = usize::try_from(v)
            .map_err(|_| SnapshotError::Corrupt(format!("length {v} exceeds address space")))?;
        if n > self.remaining().saturating_mul(8).saturating_add(8) {
            return Err(SnapshotError::Corrupt(format!(
                "length {n} at offset {} larger than the rest of the snapshot",
                self.pos
            )));
        }
        Ok(n)
    }

    /// Reads a bool byte, rejecting anything but 0 or 1.
    pub fn get_bool(&mut self) -> Result<bool, SnapshotError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(SnapshotError::Corrupt(format!("bool byte {other}"))),
        }
    }

    /// Reads an `f64` stored by exact bit pattern.
    pub fn get_f64_bits(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a length-prefixed byte slice.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], SnapshotError> {
        let n = self.get_len()?;
        if self.remaining() < n {
            return Err(SnapshotError::Truncated {
                offset: self.pos,
                wanted: n,
            });
        }
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, SnapshotError> {
        let bytes = self.get_bytes()?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| SnapshotError::Corrupt(format!("non-UTF-8 string: {e}")))
    }
}

/// Writes the snapshot file header (magic + version).
pub fn write_header(w: &mut SnapshotWriter) {
    w.put_u32(SNAPSHOT_MAGIC);
    w.put_u32(SNAPSHOT_VERSION);
}

/// Reads and validates the snapshot file header, failing loudly on a
/// foreign file or a version mismatch.
pub fn read_header(r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
    let magic = r.get_u32()?;
    if magic != SNAPSHOT_MAGIC {
        return Err(SnapshotError::BadMagic(magic));
    }
    let version = r.get_u32()?;
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::VersionMismatch {
            found: version,
            expected: SNAPSHOT_VERSION,
        });
    }
    Ok(())
}

/// An in-memory snapshot taken to *fork* a paused simulation: one prefix
/// execution amortized across N divergent continuations.
///
/// The bytes are a complete versioned snapshot (header included, exactly
/// what [`crate::Engine::save_snapshot`] / a system-level saver emits)
/// behind an `Arc`, so handing a fork to N children is N pointer clones —
/// no disk round-trip and no buffer copies. `state_hash` fingerprints the
/// snapshot *body* at the moment the fork was taken; restore paths use it
/// as the byte-identity oracle (a restored engine must hash to the same
/// value before it steps).
///
/// `ForkSnapshot` is the in-RAM sibling of the bench crate's persistent
/// `CheckpointStore` tier: forks never touch disk and die with the
/// process; the store covers cross-invocation warm starts.
#[derive(Debug, Clone)]
pub struct ForkSnapshot {
    cycle: u64,
    bytes: std::sync::Arc<Vec<u8>>,
    state_hash: u64,
}

impl ForkSnapshot {
    /// Wraps freshly serialized snapshot bytes taken at `cycle`.
    pub fn new(cycle: u64, bytes: Vec<u8>, state_hash: u64) -> Self {
        Self {
            cycle,
            bytes: std::sync::Arc::new(bytes),
            state_hash,
        }
    }

    /// Cycle the forked simulation was paused at.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The full snapshot encoding (header + body).
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// FNV-1a fingerprint of the paused state's canonical body encoding.
    pub fn state_hash(&self) -> u64 {
        self.state_hash
    }
}

/// A value with a canonical binary snapshot encoding.
///
/// `load(save(x)) == x` for every observable aspect of the value; the
/// encoding itself is deterministic, so it doubles as hashing input.
pub trait Snap: Sized {
    /// Appends this value's canonical encoding to `w`.
    fn save(&self, w: &mut SnapshotWriter);

    /// Decodes a value previously written by [`Snap::save`].
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError>;
}

// ---- primitives ----

impl Snap for u8 {
    fn save(&self, w: &mut SnapshotWriter) {
        w.put_u8(*self);
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        r.get_u8()
    }
}

impl Snap for u16 {
    fn save(&self, w: &mut SnapshotWriter) {
        w.put_u16(*self);
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        r.get_u16()
    }
}

impl Snap for u32 {
    fn save(&self, w: &mut SnapshotWriter) {
        w.put_u32(*self);
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        r.get_u32()
    }
}

impl Snap for u64 {
    fn save(&self, w: &mut SnapshotWriter) {
        w.put_u64(*self);
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        r.get_u64()
    }
}

impl Snap for usize {
    fn save(&self, w: &mut SnapshotWriter) {
        w.put_len(*self);
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let v = r.get_u64()?;
        usize::try_from(v)
            .map_err(|_| SnapshotError::Corrupt(format!("usize {v} exceeds address space")))
    }
}

impl Snap for bool {
    fn save(&self, w: &mut SnapshotWriter) {
        w.put_bool(*self);
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        r.get_bool()
    }
}

impl Snap for () {
    fn save(&self, _w: &mut SnapshotWriter) {}
    fn load(_r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(())
    }
}

impl Snap for f64 {
    fn save(&self, w: &mut SnapshotWriter) {
        w.put_f64_bits(*self);
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        r.get_f64_bits()
    }
}

impl Snap for String {
    fn save(&self, w: &mut SnapshotWriter) {
        w.put_str(self);
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        r.get_str()
    }
}

// ---- containers ----

impl<T: Snap> Snap for Vec<T> {
    fn save(&self, w: &mut SnapshotWriter) {
        w.put_len(self.len());
        for item in self {
            item.save(w);
        }
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let n = r.get_len()?;
        let mut out = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            out.push(T::load(r)?);
        }
        Ok(out)
    }
}

impl<T: Snap> Snap for VecDeque<T> {
    fn save(&self, w: &mut SnapshotWriter) {
        w.put_len(self.len());
        for item in self {
            item.save(w);
        }
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Vec::<T>::load(r)?.into())
    }
}

impl<T: Snap> Snap for Option<T> {
    fn save(&self, w: &mut SnapshotWriter) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.save(w);
            }
        }
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        match r.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::load(r)?)),
            tag => Err(SnapshotError::Corrupt(format!("Option tag {tag}"))),
        }
    }
}

impl<T: Snap> Snap for Box<T> {
    fn save(&self, w: &mut SnapshotWriter) {
        self.as_ref().save(w);
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Box::new(T::load(r)?))
    }
}

impl<K: Snap + Ord, V: Snap> Snap for BTreeMap<K, V> {
    fn save(&self, w: &mut SnapshotWriter) {
        w.put_len(self.len());
        for (k, v) in self {
            k.save(w);
            v.save(w);
        }
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let n = r.get_len()?;
        let mut out = BTreeMap::new();
        for _ in 0..n {
            let k = K::load(r)?;
            let v = V::load(r)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<A: Snap, B: Snap> Snap for (A, B) {
    fn save(&self, w: &mut SnapshotWriter) {
        self.0.save(w);
        self.1.save(w);
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok((A::load(r)?, B::load(r)?))
    }
}

impl<A: Snap, B: Snap, C: Snap> Snap for (A, B, C) {
    fn save(&self, w: &mut SnapshotWriter) {
        self.0.save(w);
        self.1.save(w);
        self.2.save(w);
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok((A::load(r)?, B::load(r)?, C::load(r)?))
    }
}

impl<T: Snap, const N: usize> Snap for [T; N] {
    fn save(&self, w: &mut SnapshotWriter) {
        for item in self {
            item.save(w);
        }
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let mut items = Vec::with_capacity(N);
        for _ in 0..N {
            items.push(T::load(r)?);
        }
        items
            .try_into()
            .map_err(|_| SnapshotError::Corrupt("array length mismatch".to_string()))
    }
}

/// Insertion order is the [`OrderedMap`]'s observable iteration order,
/// so saving in iteration order and rebuilding by `insert` reproduces
/// the map exactly.
impl<K: Snap + std::hash::Hash + Eq, V: Snap> Snap for OrderedMap<K, V> {
    fn save(&self, w: &mut SnapshotWriter) {
        w.put_len(self.len());
        for (k, v) in self.iter() {
            k.save(w);
            v.save(w);
        }
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let n = r.get_len()?;
        let mut out = OrderedMap::new();
        for _ in 0..n {
            let k = K::load(r)?;
            let v = V::load(r)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

// ---- proto identifiers and addresses ----

macro_rules! snap_newtype {
    ($($ty:ty => $repr:ty),* $(,)?) => {
        $(impl Snap for $ty {
            fn save(&self, w: &mut SnapshotWriter) {
                self.0.save(w);
            }
            fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
                Ok(Self(<$repr>::load(r)?))
            }
        })*
    };
}

snap_newtype!(
    GpuId => u16,
    ClusterId => u16,
    CuId => u16,
    CtaId => u32,
    WavefrontId => u32,
    NodeId => u16,
    AccessId => u64,
    PacketId => u64,
    VAddr => u64,
    PAddr => u64,
    LineAddr => u64,
    LineMask => u64,
);

impl<T: From<u64>> Snap for IdAlloc<T> {
    fn save(&self, w: &mut SnapshotWriter) {
        w.put_u64(self.issued());
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(IdAlloc::with_issued(r.get_u64()?))
    }
}

// ---- proto protocol types ----

impl Snap for TrafficClass {
    fn save(&self, w: &mut SnapshotWriter) {
        w.put_u8(match self {
            TrafficClass::Data => 0,
            TrafficClass::Ptw => 1,
        });
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        match r.get_u8()? {
            0 => Ok(TrafficClass::Data),
            1 => Ok(TrafficClass::Ptw),
            tag => Err(SnapshotError::Corrupt(format!("TrafficClass tag {tag}"))),
        }
    }
}

impl Snap for PacketKind {
    fn save(&self, w: &mut SnapshotWriter) {
        w.put_u8(u8::try_from(self.index()).expect("six packet kinds"));
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let tag = r.get_u8()?;
        netcrafter_proto::ALL_PACKET_KINDS
            .get(usize::from(tag))
            .copied()
            .ok_or_else(|| SnapshotError::Corrupt(format!("PacketKind tag {tag}")))
    }
}

impl Snap for Origin {
    fn save(&self, w: &mut SnapshotWriter) {
        match self {
            Origin::Cu(cu) => {
                w.put_u8(0);
                w.put_u16(*cu);
            }
            Origin::Gmmu => w.put_u8(1),
            Origin::Rdma => w.put_u8(2),
            Origin::L2 => w.put_u8(3),
        }
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        match r.get_u8()? {
            0 => Ok(Origin::Cu(r.get_u16()?)),
            1 => Ok(Origin::Gmmu),
            2 => Ok(Origin::Rdma),
            3 => Ok(Origin::L2),
            tag => Err(SnapshotError::Corrupt(format!("Origin tag {tag}"))),
        }
    }
}

impl Snap for MemReq {
    fn save(&self, w: &mut SnapshotWriter) {
        self.access.save(w);
        self.line.save(w);
        self.write.save(w);
        self.mask.save(w);
        self.sectors.save(w);
        self.class.save(w);
        self.requester.save(w);
        self.owner.save(w);
        self.origin.save(w);
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(MemReq {
            access: Snap::load(r)?,
            line: Snap::load(r)?,
            write: Snap::load(r)?,
            mask: Snap::load(r)?,
            sectors: Snap::load(r)?,
            class: Snap::load(r)?,
            requester: Snap::load(r)?,
            owner: Snap::load(r)?,
            origin: Snap::load(r)?,
        })
    }
}

impl Snap for MemRsp {
    fn save(&self, w: &mut SnapshotWriter) {
        self.access.save(w);
        self.line.save(w);
        self.write.save(w);
        self.sectors_valid.save(w);
        self.class.save(w);
        self.requester.save(w);
        self.owner.save(w);
        self.origin.save(w);
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(MemRsp {
            access: Snap::load(r)?,
            line: Snap::load(r)?,
            write: Snap::load(r)?,
            sectors_valid: Snap::load(r)?,
            class: Snap::load(r)?,
            requester: Snap::load(r)?,
            owner: Snap::load(r)?,
            origin: Snap::load(r)?,
        })
    }
}

impl Snap for TransReq {
    fn save(&self, w: &mut SnapshotWriter) {
        self.access.save(w);
        self.vpn.save(w);
        self.cu.save(w);
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(TransReq {
            access: Snap::load(r)?,
            vpn: Snap::load(r)?,
            cu: Snap::load(r)?,
        })
    }
}

impl Snap for TransRsp {
    fn save(&self, w: &mut SnapshotWriter) {
        self.access.save(w);
        self.vpn.save(w);
        self.pfn.save(w);
        self.cu.save(w);
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(TransRsp {
            access: Snap::load(r)?,
            vpn: Snap::load(r)?,
            pfn: Snap::load(r)?,
            cu: Snap::load(r)?,
        })
    }
}

impl Snap for TrimInfo {
    fn save(&self, w: &mut SnapshotWriter) {
        self.granularity.save(w);
        self.sector.save(w);
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(TrimInfo {
            granularity: Snap::load(r)?,
            sector: Snap::load(r)?,
        })
    }
}

impl Snap for PacketPayload {
    fn save(&self, w: &mut SnapshotWriter) {
        match self {
            PacketPayload::Req(req) => {
                w.put_u8(0);
                req.save(w);
            }
            PacketPayload::Rsp(rsp) => {
                w.put_u8(1);
                rsp.save(w);
            }
        }
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        match r.get_u8()? {
            0 => Ok(PacketPayload::Req(Snap::load(r)?)),
            1 => Ok(PacketPayload::Rsp(Snap::load(r)?)),
            tag => Err(SnapshotError::Corrupt(format!("PacketPayload tag {tag}"))),
        }
    }
}

impl Snap for Packet {
    fn save(&self, w: &mut SnapshotWriter) {
        self.id.save(w);
        self.kind.save(w);
        self.src.save(w);
        self.dst.save(w);
        self.payload_bytes.save(w);
        self.trim.save(w);
        self.inner.save(w);
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Packet {
            id: Snap::load(r)?,
            kind: Snap::load(r)?,
            src: Snap::load(r)?,
            dst: Snap::load(r)?,
            payload_bytes: Snap::load(r)?,
            trim: Snap::load(r)?,
            inner: Snap::load(r)?,
        })
    }
}

impl Snap for Chunk {
    fn save(&self, w: &mut SnapshotWriter) {
        self.packet.save(w);
        self.kind.save(w);
        self.bytes.save(w);
        self.meta_bytes.save(w);
        self.has_header.save(w);
        self.is_tail.save(w);
        self.seq.save(w);
        self.dst.save(w);
        self.class.save(w);
        self.packet_info.save(w);
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Chunk {
            packet: Snap::load(r)?,
            kind: Snap::load(r)?,
            bytes: Snap::load(r)?,
            meta_bytes: Snap::load(r)?,
            has_header: Snap::load(r)?,
            is_tail: Snap::load(r)?,
            seq: Snap::load(r)?,
            dst: Snap::load(r)?,
            class: Snap::load(r)?,
            packet_info: Snap::load(r)?,
        })
    }
}

impl Snap for Flit {
    fn save(&self, w: &mut SnapshotWriter) {
        self.capacity.save(w);
        self.chunks.save(w);
        self.dst.save(w);
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Flit {
            capacity: Snap::load(r)?,
            chunks: Snap::load(r)?,
            dst: Snap::load(r)?,
        })
    }
}

impl Snap for Message {
    fn save(&self, w: &mut SnapshotWriter) {
        match self {
            Message::MemReq(req) => {
                w.put_u8(0);
                req.save(w);
            }
            Message::MemRsp(rsp) => {
                w.put_u8(1);
                rsp.save(w);
            }
            Message::TransReq(req) => {
                w.put_u8(2);
                req.save(w);
            }
            Message::TransRsp(rsp) => {
                w.put_u8(3);
                rsp.save(w);
            }
            Message::Flit { flit, from, link } => {
                w.put_u8(4);
                flit.save(w);
                from.save(w);
                link.save(w);
            }
            Message::Credit { from, count, link } => {
                w.put_u8(5);
                from.save(w);
                count.save(w);
                link.save(w);
            }
        }
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        match r.get_u8()? {
            0 => Ok(Message::MemReq(Snap::load(r)?)),
            1 => Ok(Message::MemRsp(Snap::load(r)?)),
            2 => Ok(Message::TransReq(Snap::load(r)?)),
            3 => Ok(Message::TransRsp(Snap::load(r)?)),
            4 => Ok(Message::Flit {
                flit: Snap::load(r)?,
                from: Snap::load(r)?,
                link: Snap::load(r)?,
            }),
            5 => Ok(Message::Credit {
                from: Snap::load(r)?,
                count: Snap::load(r)?,
                link: Snap::load(r)?,
            }),
            tag => Err(SnapshotError::Corrupt(format!("Message tag {tag}"))),
        }
    }
}

// ---- proto workload types ----

impl Snap for AccessKind {
    fn save(&self, w: &mut SnapshotWriter) {
        w.put_u8(match self {
            AccessKind::Read => 0,
            AccessKind::Write => 1,
        });
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        match r.get_u8()? {
            0 => Ok(AccessKind::Read),
            1 => Ok(AccessKind::Write),
            tag => Err(SnapshotError::Corrupt(format!("AccessKind tag {tag}"))),
        }
    }
}

impl Snap for CoalescedAccess {
    fn save(&self, w: &mut SnapshotWriter) {
        self.vaddr.save(w);
        self.kind.save(w);
        self.mask.save(w);
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let vaddr = Snap::load(r)?;
        let kind = Snap::load(r)?;
        let mask: LineMask = Snap::load(r)?;
        if mask.is_empty() {
            return Err(SnapshotError::Corrupt("empty access mask".to_string()));
        }
        Ok(CoalescedAccess::with_mask(vaddr, kind, mask))
    }
}

impl Snap for WavefrontOp {
    fn save(&self, w: &mut SnapshotWriter) {
        match self {
            WavefrontOp::Mem(access) => {
                w.put_u8(0);
                access.save(w);
            }
            WavefrontOp::Compute(cycles) => {
                w.put_u8(1);
                cycles.save(w);
            }
        }
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        match r.get_u8()? {
            0 => Ok(WavefrontOp::Mem(Snap::load(r)?)),
            1 => Ok(WavefrontOp::Compute(Snap::load(r)?)),
            tag => Err(SnapshotError::Corrupt(format!("WavefrontOp tag {tag}"))),
        }
    }
}

impl Snap for WavefrontTrace {
    fn save(&self, w: &mut SnapshotWriter) {
        self.id.save(w);
        self.cta.save(w);
        self.ops.save(w);
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(WavefrontTrace {
            id: Snap::load(r)?,
            cta: Snap::load(r)?,
            ops: Snap::load(r)?,
        })
    }
}

// ---- proto statistics types ----

impl Snap for LatencyStat {
    fn save(&self, w: &mut SnapshotWriter) {
        self.count.save(w);
        self.sum.save(w);
        self.max.save(w);
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(LatencyStat {
            count: Snap::load(r)?,
            sum: Snap::load(r)?,
            max: Snap::load(r)?,
        })
    }
}

impl Snap for Histogram {
    fn save(&self, w: &mut SnapshotWriter) {
        w.put_len(self.iter().count());
        for (bucket, count) in self.iter() {
            w.put_u64(bucket);
            w.put_u64(count);
        }
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let n = r.get_len()?;
        let mut out = Histogram::new();
        for _ in 0..n {
            let bucket = r.get_u64()?;
            let count = r.get_u64()?;
            out.add(bucket, count);
        }
        Ok(out)
    }
}

/// Rebuilds through `new(window)` + `add`, including trailing
/// zero-valued buckets (bucket count is observable via
/// [`TimeSeries::len`]).
impl Snap for TimeSeries {
    fn save(&self, w: &mut SnapshotWriter) {
        w.put_u64(self.window());
        w.put_len(self.len());
        for ix in 0..self.len() {
            w.put_u64(self.bucket(ix));
        }
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let window = r.get_u64()?;
        if window == 0 {
            return Err(SnapshotError::Corrupt("TimeSeries window 0".to_string()));
        }
        let n = r.get_len()?;
        let mut out = TimeSeries::new(window);
        for ix in 0..n {
            out.add(ix as u64 * window, r.get_u64()?);
        }
        Ok(out)
    }
}

/// [`Metrics`] round-trips losslessly through its own `to_kv` text form
/// (covered by the proto test `kv_round_trip_is_lossless`), so the
/// snapshot embeds that canonical text instead of duplicating the
/// registry layout.
impl Snap for Metrics {
    fn save(&self, w: &mut SnapshotWriter) {
        w.put_str(&self.to_kv());
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let text = r.get_str()?;
        Metrics::from_kv(&text)
            .ok_or_else(|| SnapshotError::Corrupt("malformed Metrics kv text".to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Snap + PartialEq + std::fmt::Debug>(value: &T) {
        let mut w = SnapshotWriter::new();
        value.save(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapshotReader::new(&bytes);
        let back = T::load(&mut r).expect("round trip decodes");
        assert_eq!(&back, value);
        assert_eq!(r.remaining(), 0, "decoder consumed every byte");
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(&0u8);
        round_trip(&0xA5u8);
        round_trip(&0xBEEFu16);
        round_trip(&0xDEAD_BEEFu32);
        round_trip(&u64::MAX);
        round_trip(&true);
        round_trip(&false);
        round_trip(&3.25f64);
        round_trip(&String::from("net.inter.flits"));
        round_trip(&String::new());
    }

    #[test]
    fn containers_round_trip() {
        round_trip(&vec![1u64, 2, 3]);
        round_trip(&Vec::<u64>::new());
        round_trip(&VecDeque::from([7u32, 8, 9]));
        round_trip(&Some(42u64));
        round_trip(&Option::<u64>::None);
        round_trip(&Box::new(5u8));
        round_trip(&BTreeMap::from([(1u64, 2u64), (3, 4)]));
        round_trip(&(1u32, 2u64));
        round_trip(&(1u8, 2u16, 3u32));
        round_trip(&[5u64, 6, 7]);
    }

    #[test]
    fn ordered_map_preserves_insertion_order() {
        let mut m = OrderedMap::new();
        for k in [9u64, 2, 7, 4] {
            m.insert(k, k * 10);
        }
        let mut w = SnapshotWriter::new();
        m.save(&mut w);
        let bytes = w.into_bytes();
        let back: OrderedMap<u64, u64> =
            Snap::load(&mut SnapshotReader::new(&bytes)).expect("decodes");
        let keys: Vec<u64> = back.keys().copied().collect();
        assert_eq!(keys, [9, 2, 7, 4]);
        assert_eq!(back.get(&7), Some(&70));
    }

    #[test]
    fn id_alloc_round_trip_preserves_next_id() {
        let mut alloc = IdAlloc::<AccessId>::new();
        alloc.next();
        alloc.next();
        let mut w = SnapshotWriter::new();
        alloc.save(&mut w);
        let bytes = w.into_bytes();
        let mut back: IdAlloc<AccessId> =
            Snap::load(&mut SnapshotReader::new(&bytes)).expect("decodes");
        assert_eq!(back.next(), AccessId(2));
    }

    fn sample_req() -> MemReq {
        MemReq {
            access: AccessId(5),
            line: LineAddr(0x40),
            write: false,
            mask: LineMask::span(0, 16),
            sectors: 0b1111,
            class: TrafficClass::Data,
            requester: GpuId(3),
            owner: GpuId(1),
            origin: Origin::Cu(2),
        }
    }

    #[test]
    fn messages_round_trip() {
        round_trip(&Message::MemReq(sample_req()));
        round_trip(&Message::MemRsp(MemRsp::for_req(&sample_req(), 0b0001)));
        round_trip(&Message::TransReq(TransReq {
            access: AccessId(9),
            vpn: 0x123,
            cu: 4,
        }));
        round_trip(&Message::TransRsp(TransRsp {
            access: AccessId(9),
            vpn: 0x123,
            pfn: 0x456,
            cu: 4,
        }));
        round_trip(&Message::Credit {
            from: NodeId(3),
            count: 2,
            link: 5,
        });
        let packet = Packet {
            id: PacketId(7),
            kind: PacketKind::ReadRsp,
            src: NodeId(0),
            dst: NodeId(3),
            payload_bytes: 64,
            trim: Some(TrimInfo {
                granularity: 16,
                sector: 2,
            }),
            inner: PacketPayload::Rsp(MemRsp::for_req(&sample_req(), 0b1111)),
        };
        let chunk = Chunk {
            packet: PacketId(7),
            kind: PacketKind::ReadRsp,
            bytes: 4,
            meta_bytes: 2,
            has_header: false,
            is_tail: true,
            seq: 4,
            dst: NodeId(3),
            class: TrafficClass::Data,
            packet_info: Some(Box::new(packet)),
        };
        round_trip(&Message::Flit {
            flit: Flit {
                capacity: 16,
                chunks: vec![chunk],
                dst: NodeId(3),
            },
            from: NodeId(1),
            link: 2,
        });
    }

    #[test]
    fn wavefront_traces_round_trip() {
        let trace = WavefrontTrace {
            id: WavefrontId(3),
            cta: CtaId(1),
            ops: vec![
                WavefrontOp::Compute(10),
                WavefrontOp::Mem(CoalescedAccess::read(VAddr(0x100), 8)),
                WavefrontOp::Mem(CoalescedAccess::write(VAddr(0x140), 64)),
            ],
        };
        let mut w = SnapshotWriter::new();
        trace.save(&mut w);
        let bytes = w.into_bytes();
        let back: WavefrontTrace = Snap::load(&mut SnapshotReader::new(&bytes)).expect("decodes");
        assert_eq!(back.id, trace.id);
        assert_eq!(back.cta, trace.cta);
        assert_eq!(back.ops, trace.ops);
    }

    #[test]
    fn stats_round_trip() {
        let mut lat = LatencyStat::default();
        lat.record(10);
        lat.record(30);
        round_trip(&lat);

        let mut hist = Histogram::new();
        hist.add(16, 2);
        hist.add(64, 1);
        round_trip(&hist);
        round_trip(&Histogram::new());

        let mut ts = TimeSeries::new(100);
        ts.add(0, 5);
        ts.add(950, 1); // forces trailing zero buckets in between
        round_trip(&ts);
        round_trip(&TimeSeries::new(7));
    }

    #[test]
    fn metrics_round_trip() {
        let mut m = Metrics::new();
        m.add("net.inter.flits", 15);
        m.latency_mut("net.read").record(56);
        m.histogram_mut("net.occupancy").add(16, 2);
        let mut w = SnapshotWriter::new();
        m.save(&mut w);
        let bytes = w.into_bytes();
        let back: Metrics = Snap::load(&mut SnapshotReader::new(&bytes)).expect("decodes");
        assert_eq!(back.to_kv(), m.to_kv());
    }

    #[test]
    fn header_round_trip_and_version_gate() {
        let mut w = SnapshotWriter::new();
        write_header(&mut w);
        let good = w.into_bytes();
        assert!(read_header(&mut SnapshotReader::new(&good)).is_ok());

        // Wrong magic: a foreign file.
        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xFF;
        assert!(matches!(
            read_header(&mut SnapshotReader::new(&bad_magic)),
            Err(SnapshotError::BadMagic(_))
        ));

        // Old version: must name both versions, not decode garbage.
        let mut old = SnapshotWriter::new();
        old.put_u32(SNAPSHOT_MAGIC);
        old.put_u32(SNAPSHOT_VERSION + 1);
        let err = read_header(&mut SnapshotReader::new(&old.into_bytes()))
            .expect_err("future version rejected");
        match err {
            SnapshotError::VersionMismatch { found, expected } => {
                assert_eq!(found, SNAPSHOT_VERSION + 1);
                assert_eq!(expected, SNAPSHOT_VERSION);
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn truncated_reads_fail_loudly() {
        let mut w = SnapshotWriter::new();
        w.put_u64(7);
        let bytes = w.into_bytes();
        let mut r = SnapshotReader::new(&bytes[..4]);
        assert!(matches!(
            r.get_u64(),
            Err(SnapshotError::Truncated {
                offset: 0,
                wanted: 8
            })
        ));
    }

    #[test]
    fn absurd_length_fields_are_rejected() {
        let mut w = SnapshotWriter::new();
        w.put_u64(u64::MAX); // claimed element count
        let bytes = w.into_bytes();
        let got: Result<Vec<u64>, _> = Snap::load(&mut SnapshotReader::new(&bytes));
        assert!(matches!(got, Err(SnapshotError::Corrupt(_))));
    }

    #[test]
    fn bad_enum_tags_are_rejected() {
        let bytes = [9u8];
        let got: Result<TrafficClass, _> = Snap::load(&mut SnapshotReader::new(&bytes));
        assert!(matches!(got, Err(SnapshotError::Corrupt(_))));
        let got: Result<Message, _> = Snap::load(&mut SnapshotReader::new(&bytes));
        assert!(matches!(got, Err(SnapshotError::Corrupt(_))));
        let got: Result<Option<u8>, _> = Snap::load(&mut SnapshotReader::new(&bytes));
        assert!(matches!(got, Err(SnapshotError::Corrupt(_))));
    }

    #[test]
    fn encoding_is_deterministic() {
        let msg = Message::MemReq(sample_req());
        let mut a = SnapshotWriter::new();
        msg.save(&mut a);
        let mut b = SnapshotWriter::new();
        msg.save(&mut b);
        assert_eq!(a.into_bytes(), b.into_bytes());
    }
}
