//! Deterministic cycle-level simulation engine.
//!
//! The engine follows the Akita execution model that MGPUSim is built on:
//! a set of components advances in lock-step, one tick per cycle, and
//! communicates exclusively through messages with explicit cycle delays.
//! Two properties are guaranteed:
//!
//! * **Determinism** — components tick in a fixed order and messages are
//!   delivered in send order per cycle, so the same configuration and seed
//!   always produce bit-identical results.
//! * **Cheap idle** — the default event-driven scheduler ticks only
//!   components with scheduled work ([`Component::next_wake`]) and
//!   fast-forwards the clock across dead cycles, producing bit-identical
//!   results to the tick-everything [`SchedulerMode::Legacy`] reference.
//!
//! The crate also provides the small timing utilities every hardware model
//! needs: [`DelayQueue`] (fixed-latency pipelines), [`RateLimiter`]
//! (bandwidth modelling with fractional bytes/cycle), and [`Ticker`]
//! (periodic events).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod arena;
pub mod engine;
pub mod parallel;
pub mod snapshot;
pub mod timing;
pub mod trace;

pub use arena::{Arena, Handle};
pub use engine::{
    default_scheduler, set_default_scheduler, BurstOutcome, Component, ComponentId, Ctx, Engine,
    EngineBuilder, SchedulerMode, TraceEvent, Wake,
};
pub use parallel::Partition;
pub use snapshot::{
    read_header, write_header, ForkSnapshot, Snap, SnapshotError, SnapshotReader, SnapshotWriter,
    SNAPSHOT_MAGIC, SNAPSHOT_VERSION,
};
pub use timing::{DelayQueue, RateLimiter, Ticker};
pub use trace::{Event, EventClass, Phase, Trace, TraceConfig, Tracer};

/// Simulation time in core clock cycles (1 GHz).
pub type Cycle = u64;
