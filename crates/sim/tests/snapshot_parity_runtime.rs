//! Runtime demonstration of the failure class the
//! `snapshot-field-parity` lint rule closes statically: a component
//! whose `save_state` omits one evolving field restores cleanly, hashes
//! identically at the restore point — and then silently diverges from
//! the original run. The complete twin stays bit-identical.
//!
//! (This file lives in `tests/`, outside the linter's `src/` scan, so
//! the deliberately leaky component does not need a waiver.)

use netcrafter_sim::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter};
use netcrafter_sim::{Component, Ctx, EngineBuilder};

/// Accumulator whose `sum` trajectory depends on the tick counter. With
/// `complete: false` the counter is left out of the snapshot pair —
/// exactly the single-field omission the parity rule rejects.
struct Drifter {
    ticks: u64,
    sum: u64,
    horizon: u64,
    complete: bool,
}

impl Drifter {
    fn boxed(complete: bool) -> Box<dyn Component> {
        Box::new(Drifter {
            ticks: 0,
            sum: 0,
            horizon: 200,
            complete,
        })
    }
}

impl Component for Drifter {
    fn tick(&mut self, _ctx: &mut Ctx<'_>) {
        if self.ticks < self.horizon {
            self.ticks += 1;
            // `sum` depends on `ticks`, so a restore that resets `ticks`
            // bends the `sum` trajectory from here on.
            self.sum += self.ticks * 3 + 1;
        }
    }

    fn busy(&self) -> bool {
        self.ticks < self.horizon
    }

    fn name(&self) -> &str {
        "drifter"
    }

    fn save_state(&self, w: &mut SnapshotWriter) {
        w.put_u64(self.sum);
        if self.complete {
            w.put_u64(self.ticks);
        }
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        self.sum = r.get_u64()?;
        if self.complete {
            self.ticks = r.get_u64()?;
        }
        Ok(())
    }
}

/// Runs to cycle 50, snapshots, and compares the original at cycle 150
/// with a restored replica run over the same span.
fn divergence_after_restore(complete: bool) -> (u64, u64) {
    let mut b = EngineBuilder::new();
    b.add(Drifter::boxed(complete));
    let mut original = b.build();
    original.run_until(50);
    let snapshot = original.save_snapshot();
    original.run_until(150);

    let mut b = EngineBuilder::new();
    b.add(Drifter::boxed(complete));
    let mut replica = b.build();
    replica.restore(&snapshot).expect("snapshot restores");
    replica.run_until(150);
    (original.state_hash(), replica.state_hash())
}

#[test]
fn complete_snapshot_pair_is_restore_equivalent() {
    let (original, replica) = divergence_after_restore(true);
    assert_eq!(
        original, replica,
        "a component that snapshots every field replays bit-identically"
    );
}

#[test]
fn omitting_one_field_write_diverges_silently() {
    let (original, replica) = divergence_after_restore(false);
    assert_ne!(
        original, replica,
        "dropping a single field from save_state must show up as \
         post-restore divergence (else the parity rule guards nothing)"
    );
}
