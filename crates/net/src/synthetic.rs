//! Synthetic traffic evaluation of the interconnect substrate: uniform
//! random flit injection through the two-cluster switch fabric, producing
//! the classic load-latency curve (latency explodes as offered load
//! approaches the bottleneck link's capacity).
//!
//! This validates the network model independently of the GPU stack: the
//! inter-cluster link must saturate at exactly its configured
//! flits/cycle, back-pressure must keep buffers bounded, and latency
//! under light load must equal the sum of pipeline and wire delays.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use netcrafter_proto::{Chunk, Flit, Message, NodeId, PacketId, PacketKind, TrafficClass};
use netcrafter_sim::snapshot::{Snap, SnapshotError, SnapshotReader, SnapshotWriter};
use netcrafter_sim::{Component, ComponentId, Ctx, Cycle, EngineBuilder, RateLimiter, Wake};

use crate::port::FifoQueue;
use crate::switch::{Switch, SwitchPortSpec};

/// Results of one synthetic-load run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadPoint {
    /// Offered load in flits/cycle per source.
    pub offered: f64,
    /// Delivered throughput in flits/cycle over the whole fabric.
    pub throughput: f64,
    /// Mean end-to-end flit latency in cycles.
    pub avg_latency: f64,
    /// Maximum observed flit latency.
    pub max_latency: u64,
}

/// A flit source injecting uniform random-destination traffic at a fixed
/// rate. The injection timestamp rides in the packet id, so the sink can
/// compute end-to-end latency without side tables.
struct Source {
    // lint:allow(snapshot-field-parity) construction-time wiring identity
    node: NodeId,
    // lint:allow(snapshot-field-parity) construction-time wiring; the restore target is built with the same topology
    switch: ComponentId,
    /// This endpoint's port index at its switch, stamped as `link` on
    /// every flit so the switch can index the ingress port directly.
    // lint:allow(snapshot-field-parity) construction-time wiring; the restore target is built with the same topology
    switch_port: u16,
    rate: RateLimiter,
    // lint:allow(snapshot-field-parity) construction-time destination set from the config
    dsts: Vec<NodeId>,
    remaining: u64,
    credits: u32,
    rng_state: u64,
    // lint:allow(snapshot-field-parity) construction-time config; identical in the restore target by construction
    flit_bytes: u32,
}

impl Source {
    fn next_dst(&mut self) -> NodeId {
        // xorshift64*: deterministic, dependency-free.
        self.rng_state ^= self.rng_state >> 12;
        self.rng_state ^= self.rng_state << 25;
        self.rng_state ^= self.rng_state >> 27;
        let x = self.rng_state.wrapping_mul(0x2545F4914F6CDD1D);
        self.dsts[(x % self.dsts.len() as u64) as usize]
    }
}

impl Component for Source {
    fn tick(&mut self, ctx: &mut Ctx<'_>) {
        while let Some(msg) = ctx.recv() {
            if let Message::Credit { count, .. } = msg {
                self.credits += count;
            }
        }
        self.rate.accrue();
        while self.remaining > 0 && self.credits > 0 && self.rate.try_consume(1.0) {
            self.remaining -= 1;
            self.credits -= 1;
            let dst = self.next_dst();
            let flit = Flit::single(
                self.flit_bytes,
                Chunk {
                    packet: PacketId(ctx.cycle()), // inject timestamp
                    kind: PacketKind::ReadReq,
                    bytes: 12,
                    meta_bytes: 0,
                    has_header: true,
                    is_tail: true,
                    seq: 0,
                    dst,
                    class: TrafficClass::Data,
                    packet_info: None,
                },
            );
            ctx.send(
                self.switch,
                Message::Flit {
                    flit,
                    from: self.node,
                    link: self.switch_port,
                },
                1,
            );
        }
    }
    fn busy(&self) -> bool {
        self.remaining > 0
    }
    fn name(&self) -> &str {
        "traffic-source"
    }
    fn next_wake(&self, _now: Cycle) -> Wake {
        // Injecting: the rate limiter accrues and spends every cycle.
        // Drained: the leftover token accrual is never consumed again, so
        // skipping it is unobservable.
        if self.remaining > 0 {
            Wake::EveryCycle
        } else {
            Wake::OnMessage
        }
    }

    fn save_state(&self, w: &mut SnapshotWriter) {
        self.rate.save(w);
        self.remaining.save(w);
        self.credits.save(w);
        self.rng_state.save(w);
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        self.rate = Snap::load(r)?;
        self.remaining = Snap::load(r)?;
        self.credits = Snap::load(r)?;
        self.rng_state = Snap::load(r)?;
        Ok(())
    }
}

/// Shared latency accumulator across all sinks.
#[derive(Debug, Default)]
struct SinkStats {
    received: u64,
    latency_sum: u64,
    latency_max: u64,
}

struct Sink {
    // lint:allow(snapshot-field-parity) construction-time wiring identity
    node: NodeId,
    // lint:allow(snapshot-field-parity) construction-time wiring; the restore target is built with the same topology
    switch: ComponentId,
    /// Port index of this endpoint at its switch (for credit returns).
    // lint:allow(snapshot-field-parity) construction-time wiring; the restore target is built with the same topology
    switch_port: u16,
    /// The co-located source: the switch addresses all of this node's
    /// traffic (including returned input-buffer credits) to the sink, so
    /// the sink forwards credits to the source that actually needs them.
    // lint:allow(snapshot-field-parity) construction-time wiring; the restore target is built with the same topology
    source: ComponentId,
    stats: Arc<Mutex<SinkStats>>,
}

impl Component for Sink {
    fn tick(&mut self, ctx: &mut Ctx<'_>) {
        while let Some(msg) = ctx.recv() {
            match msg {
                Message::Flit { flit, .. } => {
                    let mut s = self.stats.lock().expect("sink stats lock");
                    for chunk in &flit.chunks {
                        let lat = ctx.cycle() - chunk.packet.raw();
                        s.received += 1;
                        s.latency_sum += lat;
                        s.latency_max = s.latency_max.max(lat);
                    }
                    ctx.send(
                        self.switch,
                        Message::Credit {
                            from: self.node,
                            count: 1,
                            link: self.switch_port,
                        },
                        1,
                    );
                }
                Message::Credit { from, count, .. } => {
                    ctx.send(
                        self.source,
                        Message::Credit {
                            from,
                            count,
                            link: 0,
                        },
                        1,
                    );
                }
                other => panic!("sink got {}", other.label()),
            }
        }
    }
    fn busy(&self) -> bool {
        false
    }
    fn name(&self) -> &str {
        "traffic-sink"
    }
    fn next_wake(&self, _now: Cycle) -> Wake {
        Wake::OnMessage
    }

    fn save_state(&self, w: &mut SnapshotWriter) {
        // The accumulator is shared by every sink; each saves (and each
        // restores) the same totals, so the repetition is idempotent.
        let s = self.stats.lock().expect("sink stats lock");
        s.received.save(w);
        s.latency_sum.save(w);
        s.latency_max.save(w);
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        let received = Snap::load(r)?;
        let latency_sum = Snap::load(r)?;
        let latency_max = Snap::load(r)?;
        let mut s = self.stats.lock().expect("sink stats lock");
        s.received = received;
        s.latency_sum = latency_sum;
        s.latency_max = latency_max;
        Ok(())
    }
}

/// Parameters of the synthetic fabric: the Figure 2 shape with
/// source/sink endpoints instead of GPUs.
#[derive(Debug, Clone, Copy)]
pub struct SyntheticConfig {
    /// Endpoints per cluster.
    pub endpoints_per_cluster: u16,
    /// Intra-cluster link rate in flits/cycle.
    pub intra_fpc: f64,
    /// Inter-cluster link rate in flits/cycle.
    pub inter_fpc: f64,
    /// Switch pipeline depth in cycles.
    pub pipeline_cycles: u32,
    /// Switch buffer capacity in flits.
    pub buffer_entries: u32,
    /// Flits injected per source.
    pub flits_per_source: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        Self {
            endpoints_per_cluster: 2,
            intra_fpc: 8.0,
            inter_fpc: 1.0,
            pipeline_cycles: 30,
            buffer_entries: 1024,
            flits_per_source: 2000,
        }
    }
}

/// Runs uniform-random traffic at `offered` flits/cycle/source through a
/// two-cluster fabric and measures delivered throughput and latency.
pub fn run_load_point(cfg: &SyntheticConfig, offered: f64) -> LoadPoint {
    assert!(offered > 0.0);
    let n = cfg.endpoints_per_cluster;
    let total_eps = (2 * n) as usize;
    let mut b = EngineBuilder::new();
    let ep_ids: Vec<ComponentId> = (0..total_eps * 2).map(|_| b.reserve()).collect();
    // Layout: endpoint i has a Source component ep_ids[2i] and a Sink
    // ep_ids[2i+1]; both share node id i (source sends, sink receives).
    // Nodes total_eps and total_eps+1 are the two cluster switches.
    let sw0 = b.reserve();
    let sw1 = b.reserve();
    let stats = Arc::new(Mutex::new(SinkStats::default()));
    let total_eps_u16 = u16::try_from(total_eps).expect("endpoint count fits in u16 node ids");
    let all_nodes: Vec<NodeId> = (0..total_eps_u16).map(NodeId).collect();

    for i in 0..total_eps {
        let my_switch = if i < n as usize { sw0 } else { sw1 };
        // Each switch's local endpoints occupy ports 0..n in node order.
        let switch_port = u16::try_from(i % n as usize).expect("port fits in u16");
        b.install(
            ep_ids[2 * i],
            Box::new(Source {
                node: all_nodes[i],
                switch: my_switch,
                switch_port,
                // Burst of rate+1 so fractional accrual is never clipped
                // before a whole-flit consume opportunity.
                rate: RateLimiter::new(offered, offered + 1.0),
                dsts: all_nodes
                    .iter()
                    .copied()
                    .filter(|&d| d != all_nodes[i])
                    .collect(),
                remaining: cfg.flits_per_source,
                credits: cfg.buffer_entries,
                rng_state: 0x9E3779B97F4A7C15 ^ (i as u64 + 1),
                flit_bytes: 16,
            }),
        );
        b.install(
            ep_ids[2 * i + 1],
            Box::new(Sink {
                node: all_nodes[i],
                switch: my_switch,
                switch_port,
                source: ep_ids[2 * i],
                stats: Arc::clone(&stats),
            }),
        );
    }

    // Switches: the flit arrives from node i (the source), but the switch
    // must deliver flits *to* node i at the sink component. Use the sink
    // as the port peer; credits from the source arrive tagged with the
    // same node id, which is all the switch keys on.
    let mk_switch = |node: NodeId, locals: std::ops::Range<usize>, other: (ComponentId, NodeId)| {
        let mut specs = Vec::new();
        let mut route = BTreeMap::new();
        for i in locals.clone() {
            route.insert(all_nodes[i], specs.len());
            specs.push(SwitchPortSpec {
                peer: ep_ids[2 * i + 1], // deliver to the sink
                peer_node: all_nodes[i],
                peer_port: 0,
                flits_per_cycle: cfg.intra_fpc,
                initial_credits: cfg.buffer_entries,
                input_capacity: cfg.buffer_entries as usize,
                output_capacity: cfg.buffer_entries as usize,
                queue: Box::new(FifoQueue::new()),
                wire_latency: crate::topology::WIRE_LATENCY,
                is_inter: false,
            });
        }
        let port = specs.len();
        route.insert(other.1, port);
        for (i, &node) in all_nodes.iter().enumerate() {
            if !locals.contains(&i) {
                route.insert(node, port);
            }
        }
        specs.push(SwitchPortSpec {
            peer: other.0,
            peer_node: other.1,
            // Both switches have n local ports, so the inter port sits at
            // the same index n on each side.
            peer_port: n,
            flits_per_cycle: cfg.inter_fpc,
            initial_credits: cfg.buffer_entries,
            input_capacity: cfg.buffer_entries as usize,
            output_capacity: cfg.buffer_entries as usize,
            queue: Box::new(FifoQueue::new()),
            wire_latency: crate::topology::WIRE_LATENCY,
            is_inter: true,
        });
        Switch::new(
            node,
            format!("{node}.switch"),
            cfg.pipeline_cycles,
            specs,
            route,
        )
    };
    let sw0_node = NodeId(total_eps_u16);
    let sw1_node = NodeId(total_eps_u16 + 1);
    b.install(
        sw0,
        Box::new(mk_switch(sw0_node, 0..n as usize, (sw1, sw1_node))),
    );
    b.install(
        sw1,
        Box::new(mk_switch(sw1_node, n as usize..total_eps, (sw0, sw0_node))),
    );

    let mut engine = b.build();
    let end: Cycle = engine.run_to_quiescence(100_000_000);
    let s = stats.lock().expect("sink stats lock");
    assert_eq!(
        s.received,
        cfg.flits_per_source * total_eps as u64,
        "flit conservation"
    );
    LoadPoint {
        offered,
        throughput: s.received as f64 / end as f64,
        avg_latency: s.latency_sum as f64 / s.received.max(1) as f64,
        max_latency: s.latency_max,
    }
}

/// Sweeps offered load and returns one [`LoadPoint`] per rate.
pub fn load_latency_sweep(cfg: &SyntheticConfig, rates: &[f64]) -> Vec<LoadPoint> {
    rates.iter().map(|&r| run_load_point(cfg, r)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SyntheticConfig {
        SyntheticConfig {
            flits_per_source: 400,
            ..SyntheticConfig::default()
        }
    }

    #[test]
    fn light_load_latency_is_structural() {
        let p = run_load_point(&small(), 0.01);
        // Intra path: wire(1)+pipeline(30)+wire(1) ≈ 32; inter path adds
        // another switch: ≈ 64. Uniform traffic mixes the two.
        assert!(
            p.avg_latency > 30.0,
            "at least one switch: {}",
            p.avg_latency
        );
        assert!(
            p.avg_latency < 120.0,
            "no queueing at light load: {}",
            p.avg_latency
        );
    }

    #[test]
    fn saturation_is_capped_by_inter_link() {
        // 2 endpoints/cluster, uniform random: 2/3 of each source's
        // traffic crosses the inter link (2 of 3 destinations), so the
        // 1 flit/cycle inter links (one each way) cap aggregate delivered
        // throughput near 2 * 1 / (2/3 * 1/2) … simpler: offered far above
        // capacity ⇒ latency explodes and throughput plateaus well below
        // offered.
        let light = run_load_point(&small(), 0.05);
        // A longer run lets the queue build to steady state.
        let heavy = run_load_point(&SyntheticConfig::default(), 1.0);
        assert!(
            heavy.avg_latency > 3.0 * light.avg_latency,
            "saturation queues: {} vs {}",
            heavy.avg_latency,
            light.avg_latency
        );
        let total_offered = 1.0 * 4.0;
        assert!(
            heavy.throughput < total_offered * 0.9,
            "inter link caps throughput: {}",
            heavy.throughput
        );
    }

    #[test]
    fn throughput_scales_until_the_knee() {
        let pts = load_latency_sweep(&small(), &[0.05, 0.1, 0.2]);
        assert!(pts[1].throughput > pts[0].throughput * 1.5);
        assert!(pts[2].throughput > pts[1].throughput * 1.2);
        // Latency is monotone non-decreasing with load.
        assert!(pts[2].avg_latency >= pts[0].avg_latency);
    }

    #[test]
    fn determinism() {
        let a = run_load_point(&small(), 0.3);
        let b = run_load_point(&small(), 0.3);
        assert_eq!(a, b);
    }
}
