//! Egress ports: bounded output buffers, link rate limiting, credit-based
//! flow control, and per-port traffic statistics.
//!
//! An [`EgressPort`] is used by both switches (per output) and GPU RDMA
//! engines (toward their cluster switch). Its queue is a boxed
//! [`EgressQueue`] so that the inter-cluster egress of a cluster switch
//! can host NetCrafter's Cluster Queue instead of the plain FIFO — the
//! Cluster Queue performs Stitching, Flit Pooling and Sequencing inside
//! its `pop`.

use netcrafter_proto::{Flit, Message, Metrics, NodeId, TimeSeries, TrafficClass};
use netcrafter_sim::snapshot::{Snap, SnapshotError, SnapshotReader, SnapshotWriter};
use netcrafter_sim::{ComponentId, Ctx, Cycle, EventClass, RateLimiter, Tracer, Wake};
use std::collections::VecDeque;

/// The queue behind an egress port. `pop` may return `None` even when the
/// queue is non-empty — that is exactly how Flit Pooling delays ejection.
/// Queues are `Send` because the owning component may run on a domain
/// worker thread under [`netcrafter_sim::SchedulerMode::ParallelEventDriven`].
pub trait EgressQueue: Send {
    /// Enqueues a flit at cycle `now`.
    fn push(&mut self, flit: Flit, now: Cycle);

    /// Dequeues the next flit to transmit, if any is willing to go. The
    /// tracer is focused on the owning component; queues that make
    /// scheduling decisions (stitching, pooling, sequencing) emit their
    /// per-decision events through it.
    fn pop(&mut self, now: Cycle, tracer: &mut Tracer) -> Option<Flit>;

    /// Flits currently held.
    fn len(&self) -> usize;

    /// Flits currently parked in pooling side-slots (0 for queues that
    /// never pool). Sampled per cycle by the link telemetry: the per-window
    /// integral of this value is the aggregate pooling delay in
    /// flit-cycles (Little's law).
    fn pooled_len(&self) -> usize {
        0
    }

    /// True when no flit is held.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Dumps queue-specific statistics under `prefix`.
    fn report(&self, metrics: &mut Metrics, prefix: &str) {
        let _ = (metrics, prefix);
    }

    /// The earliest cycle at which `pop` might return a flit: `Some(t)`
    /// with `t <= now` means "willing right now", a future `t` is a
    /// pooling-window expiry, and `None` means nothing is queued. Drives
    /// the event-driven wake of the owning port.
    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        if self.is_empty() {
            None
        } else {
            Some(now)
        }
    }

    /// Total packet chunks held, counting pooled side-slots. This is the
    /// conserved quantity behind the debug-build flit-conservation
    /// invariant ([`EgressPort`] asserts `pushed == popped + held_chunks()`
    /// in chunks around every push and pop): stitching merges flits but
    /// never creates or destroys chunks. The default is only correct for
    /// queues that hold single-chunk flits exclusively; every in-tree
    /// queue overrides it with an exact count.
    fn held_chunks(&self) -> usize {
        self.len()
    }

    /// Appends the queue's dynamic state to `w` (part of the engine
    /// snapshot of the owning component).
    fn save_state(&self, w: &mut SnapshotWriter);

    /// Restores the state written by [`EgressQueue::save_state`] into
    /// this (identically configured) queue.
    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError>;
}

/// The default strictly-FIFO egress queue.
#[derive(Debug, Default)]
pub struct FifoQueue {
    q: VecDeque<Flit>,
}

impl FifoQueue {
    /// Creates an empty FIFO.
    pub fn new() -> Self {
        Self::default()
    }
}

impl EgressQueue for FifoQueue {
    fn push(&mut self, flit: Flit, _now: Cycle) {
        self.q.push_back(flit);
    }

    fn pop(&mut self, _now: Cycle, _tracer: &mut Tracer) -> Option<Flit> {
        self.q.pop_front()
    }

    fn len(&self) -> usize {
        self.q.len()
    }

    fn held_chunks(&self) -> usize {
        self.q.iter().map(|f| f.chunks.len()).sum()
    }

    fn save_state(&self, w: &mut SnapshotWriter) {
        self.q.save(w);
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        self.q = Snap::load(r)?;
        Ok(())
    }
}

/// Per-port transmit statistics, harvested for Figures 4, 6, 9, 12, 20
/// and 21.
#[derive(Debug, Clone, Default)]
pub struct PortStats {
    /// Flits transmitted.
    pub flits: u64,
    /// Occupied (useful) bytes transmitted, excluding padding.
    pub used_bytes: u64,
    /// Stitching metadata bytes transmitted (part of used capacity but
    /// protocol overhead).
    pub meta_bytes: u64,
    /// Cycles in which at least one flit was transmitted.
    pub busy_cycles: u64,
    /// Flits carrying more than one packet (stitched).
    pub stitched_flits: u64,
    /// Extra flits avoided by stitching: for a flit carrying `k` chunks,
    /// `k - 1` transmissions were saved.
    pub chunks: u64,
    /// Flits by padding percentage bucket (0, 25, 50, 75 — computed from
    /// the flit's empty bytes over its capacity).
    pub padding_hist: [u64; 4],
    /// Flits whose primary class is PTW vs data: `[data, ptw]`.
    pub class_flits: [u64; 2],
    /// Used bytes by class: `[data, ptw]`.
    pub class_bytes: [u64; 2],
    /// Flits by packet kind (Table 1 order), attributed per chunk.
    pub kind_chunks: [u64; 6],
}

impl PortStats {
    fn record(&mut self, flit: &Flit) {
        self.flits += 1;
        let used = flit.used_bytes() as u64;
        self.used_bytes += used;
        self.chunks += flit.chunks.len() as u64;
        if flit.is_stitched() {
            self.stitched_flits += 1;
        }
        let padding_pct = flit.empty_bytes() * 100 / flit.capacity;
        let bucket = (padding_pct / 25).min(3) as usize;
        self.padding_hist[bucket] += 1;
        let class_ix = usize::from(flit.class() == TrafficClass::Ptw);
        self.class_flits[class_ix] += 1;
        for chunk in &flit.chunks {
            self.meta_bytes += chunk.meta_bytes as u64;
            let cix = usize::from(chunk.class == TrafficClass::Ptw);
            self.class_bytes[cix] += chunk.wire_bytes() as u64;
            self.kind_chunks[chunk.kind.index()] += 1;
        }
    }

    /// Appends every counter to `w`.
    pub fn save(&self, w: &mut SnapshotWriter) {
        self.flits.save(w);
        self.used_bytes.save(w);
        self.meta_bytes.save(w);
        self.busy_cycles.save(w);
        self.stitched_flits.save(w);
        self.chunks.save(w);
        self.padding_hist.save(w);
        self.class_flits.save(w);
        self.class_bytes.save(w);
        self.kind_chunks.save(w);
    }

    /// Reads counters written by [`PortStats::save`].
    pub fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(PortStats {
            flits: Snap::load(r)?,
            used_bytes: Snap::load(r)?,
            meta_bytes: Snap::load(r)?,
            busy_cycles: Snap::load(r)?,
            stitched_flits: Snap::load(r)?,
            chunks: Snap::load(r)?,
            padding_hist: Snap::load(r)?,
            class_flits: Snap::load(r)?,
            class_bytes: Snap::load(r)?,
            kind_chunks: Snap::load(r)?,
        })
    }

    /// Writes all counters under `prefix` into `metrics`.
    pub fn report(&self, metrics: &mut Metrics, prefix: &str) {
        metrics.add(&format!("{prefix}.flits"), self.flits);
        metrics.add(&format!("{prefix}.used_bytes"), self.used_bytes);
        metrics.add(&format!("{prefix}.meta_bytes"), self.meta_bytes);
        metrics.add(&format!("{prefix}.busy_cycles"), self.busy_cycles);
        metrics.add(&format!("{prefix}.stitched_flits"), self.stitched_flits);
        metrics.add(&format!("{prefix}.chunks"), self.chunks);
        for (i, count) in self.padding_hist.iter().enumerate() {
            metrics.add(&format!("{prefix}.padding{}", i * 25), *count);
        }
        metrics.add(&format!("{prefix}.data_flits"), self.class_flits[0]);
        metrics.add(&format!("{prefix}.ptw_flits"), self.class_flits[1]);
        metrics.add(&format!("{prefix}.data_bytes"), self.class_bytes[0]);
        metrics.add(&format!("{prefix}.ptw_bytes"), self.class_bytes[1]);
        for (i, kind) in netcrafter_proto::ALL_PACKET_KINDS.iter().enumerate() {
            metrics.add(
                &format!("{prefix}.kind.{}", kind.label().replace(' ', "_")),
                self.kind_chunks[i],
            );
        }
    }
}

/// Windowed per-link time series sampled by an [`EgressPort`] when
/// sampling is enabled: the raw material of the bandwidth, occupancy and
/// pooling-delay curves.
#[derive(Debug, Clone)]
pub struct PortSeries {
    /// Useful payload bytes transmitted per window (bandwidth curve).
    pub bytes: TimeSeries,
    /// Flits transmitted per window.
    pub flits: TimeSeries,
    /// Per-cycle queue-length integral per window: dividing by the window
    /// width gives mean queue occupancy; the integral itself is aggregate
    /// queueing delay in flit-cycles.
    pub occupancy: TimeSeries,
    /// Per-cycle pooled-slot integral per window — the pooling-delay
    /// curve (non-zero only on Cluster Queue ports).
    pub pooled: TimeSeries,
}

impl PortSeries {
    /// Creates an empty series set with the given window width (cycles).
    pub fn new(window: u64) -> Self {
        PortSeries {
            bytes: TimeSeries::new(window),
            flits: TimeSeries::new(window),
            occupancy: TimeSeries::new(window),
            pooled: TimeSeries::new(window),
        }
    }
}

impl Snap for PortSeries {
    fn save(&self, w: &mut SnapshotWriter) {
        self.bytes.save(w);
        self.flits.save(w);
        self.occupancy.save(w);
        self.pooled.save(w);
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(PortSeries {
            bytes: Snap::load(r)?,
            flits: Snap::load(r)?,
            occupancy: Snap::load(r)?,
            pooled: Snap::load(r)?,
        })
    }
}

/// Identity and timing of the wire an [`EgressPort`] transmits on: who
/// is on the other end, which of the peer's ports the wire lands on,
/// and how long the signal takes to get there.
#[derive(Debug, Clone, Copy)]
pub struct EgressWire {
    /// Engine address of the next hop's component.
    pub peer: ComponentId,
    /// The transmitting port's own node id.
    pub self_node: NodeId,
    /// The paired port's index at the peer (0 for single-port endpoints).
    pub peer_port: u16,
    /// Wire propagation latency in cycles.
    pub wire_latency: u64,
}

/// A rate-limited, credit-flow-controlled transmit port.
pub struct EgressPort {
    /// Engine address of the next hop's component.
    // lint:allow(snapshot-field-parity) construction-time wiring; the restore target is built with the same topology
    peer: ComponentId,
    /// This port's own node id (stamped as `from` on transmissions).
    // lint:allow(snapshot-field-parity) construction-time wiring identity
    self_node: NodeId,
    /// The paired port's index at the peer, stamped as `link` on
    /// transmissions so the receiver can index its port array directly
    /// (0 for single-port endpoints).
    // lint:allow(snapshot-field-parity) construction-time wiring; the restore target is built with the same topology
    peer_port: u16,
    /// Output buffer.
    queue: Box<dyn EgressQueue>,
    /// Output buffer capacity in flits (Table 2: 1024).
    // lint:allow(snapshot-field-parity) construction-time config; identical in the restore target by construction
    capacity: usize,
    /// Link bandwidth in flits/cycle (may be fractional).
    rate: RateLimiter,
    /// Remaining downstream buffer slots.
    credits: u32,
    /// Wire propagation latency in cycles.
    // lint:allow(snapshot-field-parity) construction-time config; identical in the restore target by construction
    wire_latency: u64,
    /// Transmit statistics.
    pub stats: PortStats,
    /// Windowed telemetry, `None` (and costing one branch per tick)
    /// unless [`EgressPort::enable_sampling`] was called.
    series: Option<Box<PortSeries>>,
    /// Cycle of the last executed tick; skipped cycles in between are
    /// replayed by [`EgressPort::catch_up`] so the rate limiter's token
    /// level stays bit-identical to ticking every cycle.
    last_tick: Cycle,
    /// Debug-build flit-conservation ledger: chunks that entered the
    /// output buffer. Chunks (not flits) are the conserved unit because
    /// stitching merges flits without creating or destroying chunks.
    #[cfg(debug_assertions)]
    dbg_pushed_chunks: u64,
    /// Debug-build flit-conservation ledger: chunks transmitted.
    #[cfg(debug_assertions)]
    dbg_popped_chunks: u64,
}

impl std::fmt::Debug for EgressPort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EgressPort")
            .field("peer", &self.peer)
            .field("self_node", &self.self_node)
            .field("queued", &self.queue.len())
            .field("credits", &self.credits)
            .finish()
    }
}

impl EgressPort {
    /// Creates a port transmitting over `wire`.
    ///
    /// * `flits_per_cycle` — link bandwidth over flit size (8.0 for the
    ///   128 GB/s intra links, 1.0 for the 16 GB/s inter links at 16 B
    ///   flits).
    /// * `initial_credits` — downstream input buffer capacity.
    pub fn new(
        wire: EgressWire,
        queue: Box<dyn EgressQueue>,
        capacity: usize,
        flits_per_cycle: f64,
        initial_credits: u32,
    ) -> Self {
        Self {
            peer: wire.peer,
            self_node: wire.self_node,
            peer_port: wire.peer_port,
            queue,
            capacity,
            // Burst of rate+1 flit: fractional accrual is never clipped
            // before reaching a whole-flit consume opportunity, so e.g. a
            // 3.125 flits/cycle link really sustains 3.125, not 3.
            rate: RateLimiter::new(flits_per_cycle, flits_per_cycle + 1.0),
            credits: initial_credits,
            wire_latency: wire.wire_latency,
            stats: PortStats::default(),
            series: None,
            last_tick: 0,
            #[cfg(debug_assertions)]
            dbg_pushed_chunks: 0,
            #[cfg(debug_assertions)]
            dbg_popped_chunks: 0,
        }
    }

    /// Debug-build invariant: every chunk pushed was either transmitted
    /// or is still held (queued or pooled). Checked around each push and
    /// at the end of each tick, so at quiescence (empty queue) it is
    /// exactly "flits injected == flits ejected" in chunk units. Compiles
    /// to nothing in release builds.
    #[inline]
    fn debug_assert_conserved(&self) {
        #[cfg(debug_assertions)]
        debug_assert_eq!(
            self.dbg_pushed_chunks,
            self.dbg_popped_chunks + self.queue.held_chunks() as u64,
            "chunk conservation violated on egress port at {}: \
             {} pushed != {} popped + {} held",
            self.self_node,
            self.dbg_pushed_chunks,
            self.dbg_popped_chunks,
            self.queue.held_chunks(),
        );
    }

    /// Turns on windowed time-series sampling with `window` cycles per
    /// bucket. Idempotent only in the sense that calling again resets the
    /// series.
    pub fn enable_sampling(&mut self, window: u64) {
        self.series = Some(Box::new(PortSeries::new(window)));
    }

    /// The sampled series, if sampling is enabled.
    pub fn series(&self) -> Option<&PortSeries> {
        self.series.as_deref()
    }

    /// Extracts the sampled series, disabling further sampling.
    pub fn take_series(&mut self) -> Option<PortSeries> {
        self.series.take().map(|b| *b)
    }

    /// True if the output buffer has room for another flit.
    pub fn can_accept(&self) -> bool {
        self.queue.len() < self.capacity
    }

    /// Free output-buffer slots.
    pub fn free_space(&self) -> usize {
        self.capacity - self.queue.len()
    }

    /// Enqueues a flit for transmission.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is full — callers must check
    /// [`EgressPort::can_accept`] and stall instead (that is the
    /// back-pressure path).
    pub fn push(&mut self, flit: Flit, now: Cycle) {
        assert!(
            self.can_accept(),
            "egress buffer overflow at {}",
            self.self_node
        );
        #[cfg(debug_assertions)]
        {
            self.dbg_pushed_chunks += flit.chunks.len() as u64;
        }
        self.queue.push(flit, now);
        self.debug_assert_conserved();
    }

    /// Handles a returned credit from the downstream buffer.
    pub fn on_credit(&mut self, count: u32) {
        self.credits += count;
    }

    /// Flits waiting in the output buffer.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// True while flits wait for transmission.
    pub fn busy(&self) -> bool {
        !self.queue.is_empty()
    }

    /// Current credit balance (for tests and diagnostics).
    pub fn credits(&self) -> u32 {
        self.credits
    }

    /// Replays the token-bucket effects of every cycle skipped since the
    /// last tick, exactly as the per-cycle ticks would have run them:
    /// `accrue()` each cycle, plus one `try_consume(1.0)` whenever credits
    /// were available (the tick loop burns one token probing an unwilling
    /// queue — see the `else break` in [`EgressPort::tick`]).
    ///
    /// Must run before any credit message is applied for the current
    /// cycle: the replay assumes the credit balance was constant across
    /// the slept span. The owning component calls this at the top of its
    /// tick, before draining its mailbox. Skipping a cycle is only legal
    /// when the queue could not transmit on it (empty, or pooling with a
    /// future release), which is exactly when the replayed ticks are
    /// pop-free — so the token level here is the only divergent state,
    /// and replaying it restores bit-identity.
    pub fn catch_up(&mut self, now: Cycle) {
        let first = self.last_tick + 1;
        if now <= first {
            return;
        }
        let mut left = now - first; // cycles last_tick+1 ..= now-1
        if self.credits == 0 {
            // The transmit loop's guard fails before any consume: pure
            // accrual, which is a no-op once the bucket is full.
            while left > 0 && !self.rate.is_saturated() {
                self.rate.accrue();
                left -= 1;
            }
        } else {
            // accrue + one burnt token per cycle. The token level follows
            // a short periodic orbit (it is a deterministic map on one
            // f64); detect the period from exact bit patterns and jump.
            // The history lives on the stack: catch_up runs before every
            // pop under the event-driven schedulers, and a heap buffer
            // here was the last per-call allocation on the transmit path.
            let mut seen = [0u64; 64];
            let mut n = 0usize;
            while left > 0 {
                let bits = self.rate.tokens_bits();
                if let Some(pos) = seen[..n].iter().position(|&b| b == bits) {
                    let period = (n - pos) as u64;
                    left %= period;
                    n = 0;
                    if left == 0 {
                        break;
                    }
                } else if n < seen.len() {
                    seen[n] = bits;
                    n += 1;
                } else {
                    // The orbit is longer than the history window (e.g. a
                    // very slow fractional rate whose residue drifts for
                    // hundreds of steps). Period detection cannot help;
                    // replay the remaining span cycle by cycle instead of
                    // scanning a full-but-useless window every iteration.
                    while left > 0 {
                        self.rate.accrue();
                        self.rate.try_consume(1.0);
                        left -= 1;
                    }
                    break;
                }
                self.rate.accrue();
                self.rate.try_consume(1.0);
                left -= 1;
            }
        }
        self.last_tick = now - 1;
    }

    /// When this port next needs its owner to tick it (used by the
    /// owner's own `next_wake`). Skipped cycles are made bit-identical by
    /// [`EgressPort::catch_up`].
    pub fn next_wake(&self, now: Cycle) -> Wake {
        if self.series.is_some() {
            // Sampling integrates queue occupancy every cycle.
            return Wake::EveryCycle;
        }
        match self.queue.next_event(now) {
            // Willing to transmit: drain per cycle while credits last;
            // with none, only a credit message changes anything.
            Some(t) if t <= now => {
                if self.credits > 0 {
                    Wake::EveryCycle
                } else {
                    Wake::OnMessage
                }
            }
            // Pooling window: wake exactly at its expiry.
            Some(t) => Wake::At(t),
            None => Wake::OnMessage,
        }
    }

    /// Advances one cycle: accrues bandwidth and transmits as many flits
    /// as rate, credits and the queue allow.
    pub fn tick(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.cycle();
        self.catch_up(now);
        self.last_tick = now;
        if let Some(series) = self.series.as_deref_mut() {
            series.occupancy.add(now, self.queue.len() as u64);
            series.pooled.add(now, self.queue.pooled_len() as u64);
        }
        self.rate.accrue();
        let mut sent_any = false;
        while self.credits > 0 && self.rate.try_consume(1.0) {
            let Some(flit) = self.queue.pop(now, ctx.tracer()) else {
                // Nothing was willing to go (the queue may be pooling);
                // the consumed token stays burnt, and `catch_up` replays
                // the same burn for skipped cycles.
                break;
            };
            self.credits -= 1;
            #[cfg(debug_assertions)]
            {
                self.dbg_popped_chunks += flit.chunks.len() as u64;
            }
            self.stats.record(&flit);
            let used = flit.used_bytes() as u64;
            if let Some(series) = self.series.as_deref_mut() {
                series.bytes.add(now, used);
                series.flits.add(now, 1);
            }
            let tracer = ctx.tracer();
            if tracer.wants(EventClass::Flit) {
                let id = flit.chunks.first().map_or(0, |c| c.packet.0);
                tracer.instant(EventClass::Flit, "flit.tx", id, used);
            }
            sent_any = true;
            ctx.send(
                self.peer,
                Message::Flit {
                    flit,
                    from: self.self_node,
                    link: self.peer_port,
                },
                self.wire_latency,
            );
        }
        if sent_any {
            self.stats.busy_cycles += 1;
        }
        self.debug_assert_conserved();
    }

    /// Queue-specific statistics (Cluster Queue counters when NetCrafter
    /// is installed on this port).
    pub fn report_queue(&self, metrics: &mut Metrics, prefix: &str) {
        self.queue.report(metrics, prefix);
    }

    /// Appends the port's dynamic state (queue contents, rate-limiter
    /// tokens, credits, stats, telemetry, conservation ledger). The byte
    /// layout is identical in debug and release builds: the debug-only
    /// conservation counters are written as zeros by release builds.
    pub fn save_state(&self, w: &mut SnapshotWriter) {
        self.queue.save_state(w);
        self.rate.save(w);
        self.credits.save(w);
        self.stats.save(w);
        self.series.as_deref().cloned().save(w);
        self.last_tick.save(w);
        #[cfg(debug_assertions)]
        {
            self.dbg_pushed_chunks.save(w);
            self.dbg_popped_chunks.save(w);
        }
        #[cfg(not(debug_assertions))]
        {
            0u64.save(w);
            0u64.save(w);
        }
    }

    /// Restores the state written by [`EgressPort::save_state`] into this
    /// (identically configured) port.
    pub fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        self.queue.load_state(r)?;
        self.rate = Snap::load(r)?;
        self.credits = Snap::load(r)?;
        self.stats = PortStats::load(r)?;
        let series: Option<PortSeries> = Snap::load(r)?;
        self.series = series.map(Box::new);
        self.last_tick = Snap::load(r)?;
        let pushed: u64 = Snap::load(r)?;
        let popped: u64 = Snap::load(r)?;
        #[cfg(debug_assertions)]
        {
            self.dbg_pushed_chunks = pushed;
            self.dbg_popped_chunks = popped;
        }
        #[cfg(not(debug_assertions))]
        let _ = (pushed, popped);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcrafter_proto::{Chunk, PacketId, PacketKind};
    use netcrafter_sim::{Component, EngineBuilder};

    fn flit(bytes: u32, ptw: bool) -> Flit {
        Flit::single(
            16,
            Chunk {
                packet: PacketId(1),
                kind: if ptw {
                    PacketKind::PageTableReq
                } else {
                    PacketKind::ReadReq
                },
                bytes,
                meta_bytes: 0,
                has_header: true,
                is_tail: true,
                seq: 0,
                dst: NodeId(9),
                class: if ptw {
                    TrafficClass::Ptw
                } else {
                    TrafficClass::Data
                },
                packet_info: None,
            },
        )
    }

    /// A component wrapping an EgressPort that pushes `n` flits at cycle 1.
    struct Tx {
        port: EgressPort,
        to_send: u32,
    }
    impl Component for Tx {
        fn tick(&mut self, ctx: &mut Ctx<'_>) {
            while let Some(Message::Credit { count, .. }) = ctx.recv() {
                self.port.on_credit(count);
            }
            while self.to_send > 0 && self.port.can_accept() {
                self.to_send -= 1;
                self.port.push(flit(12, false), ctx.cycle());
            }
            self.port.tick(ctx);
        }
        fn busy(&self) -> bool {
            self.to_send > 0 || self.port.busy()
        }
        fn name(&self) -> &str {
            "tx"
        }
    }

    /// Counts arrivals and returns credits.
    struct Rx {
        got: u64,
        peer: ComponentId,
        arrival_cycles: Vec<Cycle>,
    }
    impl Component for Rx {
        fn tick(&mut self, ctx: &mut Ctx<'_>) {
            while let Some(msg) = ctx.recv() {
                if let Message::Flit { .. } = msg {
                    self.got += 1;
                    self.arrival_cycles.push(ctx.cycle());
                    ctx.send(
                        self.peer,
                        Message::Credit {
                            from: NodeId(9),
                            count: 1,
                            link: 0,
                        },
                        1,
                    );
                }
            }
        }
        fn busy(&self) -> bool {
            false
        }
        fn name(&self) -> &str {
            "rx"
        }
    }

    fn wire_to(peer: ComponentId) -> EgressWire {
        EgressWire {
            peer,
            self_node: NodeId(0),
            peer_port: 0,
            wire_latency: 1,
        }
    }

    #[test]
    fn transmits_at_configured_rate() {
        let mut b = EngineBuilder::new();
        let tx_id = b.reserve();
        let rx_id = b.reserve();
        let port = EgressPort::new(
            wire_to(rx_id),
            Box::new(FifoQueue::new()),
            1024,
            1.0, // 1 flit/cycle
            1024,
        );
        b.install(tx_id, Box::new(Tx { port, to_send: 10 }));
        b.install(
            rx_id,
            Box::new(Rx {
                got: 0,
                peer: tx_id,
                arrival_cycles: vec![],
            }),
        );
        let mut e = b.build();
        e.run_to_quiescence(100);
        // 10 flits at 1/cycle: one arrival per cycle.
        // (Downcast-free check: messages delivered = 10 flits + 10 credits.)
        assert_eq!(e.messages_delivered(), 20);
    }

    #[test]
    fn credits_gate_transmission() {
        let mut b = EngineBuilder::new();
        let tx_id = b.reserve();
        let rx_id = b.reserve();
        let port = EgressPort::new(
            wire_to(rx_id),
            Box::new(FifoQueue::new()),
            1024,
            4.0,
            2, // only 2 downstream slots
        );
        b.install(tx_id, Box::new(Tx { port, to_send: 6 }));
        b.install(
            rx_id,
            Box::new(Rx {
                got: 0,
                peer: tx_id,
                arrival_cycles: vec![],
            }),
        );
        let mut e = b.build();
        e.run_to_quiescence(200);
        // All 6 eventually arrive (credits recycle), but never more than 2
        // outstanding — verified by total message count 6 flits + 6 credits.
        assert_eq!(e.messages_delivered(), 12);
    }

    #[test]
    fn fractional_rate_sends_every_other_cycle() {
        let mut r = RateLimiter::new(0.5, 1.0);
        let mut sent = 0;
        for _ in 0..10 {
            r.accrue();
            if r.try_consume(1.0) {
                sent += 1;
            }
        }
        assert_eq!(sent, 5);
    }

    #[test]
    fn stats_classify_flits() {
        let mut stats = PortStats::default();
        stats.record(&flit(12, false)); // 25% padding (4/16)
        stats.record(&flit(4, true)); // 75% padding
        let mut full = flit(12, false);
        full.stitch(flit(4, true));
        stats.record(&full); // 0 padding, stitched, mixed class -> ptw
        assert_eq!(stats.flits, 3);
        assert_eq!(stats.stitched_flits, 1);
        assert_eq!(stats.padding_hist[1], 1); // 25%
        assert_eq!(stats.padding_hist[3], 1); // 75%
        assert_eq!(stats.padding_hist[0], 1); // 0%
        assert_eq!(stats.class_flits, [1, 2]);
        assert_eq!(stats.chunks, 4);

        let mut m = Metrics::new();
        stats.report(&mut m, "p");
        assert_eq!(m.counter("p.flits"), 3);
        assert_eq!(m.counter("p.stitched_flits"), 1);
        assert_eq!(m.counter("p.padding75"), 1);
        assert_eq!(m.counter("p.ptw_flits"), 2);
    }

    /// A 0.01 flits/cycle link walks ~100 distinct token residues before
    /// the orbit closes — longer than the 64-entry period-detection
    /// window — so `catch_up` must take the explicit per-cycle fallback
    /// and still land on the exact token bits of a cycle-by-cycle replay.
    #[test]
    fn catch_up_handles_orbits_longer_than_history() {
        let mut b = EngineBuilder::new();
        let rx_id = b.reserve();
        drop(b);
        let mut port = EgressPort::new(wire_to(rx_id), Box::new(FifoQueue::new()), 4, 0.01, 3);
        let mut reference = RateLimiter::new(0.01, 1.01);
        for _ in 1..500u64 {
            reference.accrue();
            reference.try_consume(1.0);
        }
        port.catch_up(500);
        assert_eq!(port.rate.tokens_bits(), reference.tokens_bits());
        assert_eq!(port.last_tick, 499);
    }

    #[test]
    #[should_panic(expected = "egress buffer overflow")]
    fn overflow_panics() {
        let mut b = EngineBuilder::new();
        let rx_id = b.reserve();
        drop(b);
        let mut port = EgressPort::new(wire_to(rx_id), Box::new(FifoQueue::new()), 1, 1.0, 0);
        port.push(flit(12, false), 0);
        assert!(!port.can_accept());
        port.push(flit(12, false), 0);
    }
}
