//! Node naming and routing geometry for the hierarchical topology of
//! Figure 2: clusters of GPUs behind per-cluster switches, with the
//! cluster switches fully meshed over lower-bandwidth links.

use netcrafter_proto::{ClusterId, GpuId, NodeId, TopologyConfig};
use netcrafter_sim::Cycle;

/// Cycle latency of every switch-attached wire: GPU↔switch and
/// switch↔switch links all take one cycle (bandwidth differences are
/// modelled by the port rate limiters, not by latency). System assembly
/// uses this constant for every `SwitchPortSpec::wire_latency`, and the
/// parallel scheduler derives its lookahead from it — keep the two in
/// sync by never hardcoding `1` at a port-construction site.
pub const WIRE_LATENCY: Cycle = 1;

/// The static shape of the interconnect: which node ids exist and how they
/// map to GPUs, clusters and switches.
///
/// Node numbering: GPUs occupy `0..total_gpus`, cluster switches occupy
/// `total_gpus..total_gpus + clusters`.
#[derive(Debug, Clone)]
pub struct Topology {
    clusters: u16,
    gpus_per_cluster: u16,
}

impl Topology {
    /// Builds the topology geometry from a configuration.
    pub fn new(cfg: &TopologyConfig) -> Self {
        assert!(cfg.clusters > 0 && cfg.gpus_per_cluster > 0);
        Self {
            clusters: cfg.clusters,
            gpus_per_cluster: cfg.gpus_per_cluster,
        }
    }

    /// Number of clusters.
    pub fn clusters(&self) -> u16 {
        self.clusters
    }

    /// GPUs per cluster.
    pub fn gpus_per_cluster(&self) -> u16 {
        self.gpus_per_cluster
    }

    /// Total GPUs in the node.
    pub fn total_gpus(&self) -> u16 {
        self.clusters * self.gpus_per_cluster
    }

    /// Network node of a GPU's RDMA engine.
    pub fn gpu_node(&self, gpu: GpuId) -> NodeId {
        assert!(gpu.raw() < self.total_gpus(), "unknown {gpu}");
        NodeId(gpu.raw())
    }

    /// Network node of a cluster's switch.
    pub fn switch_node(&self, cluster: ClusterId) -> NodeId {
        assert!(cluster.raw() < self.clusters, "unknown {cluster}");
        NodeId(self.total_gpus() + cluster.raw())
    }

    /// True if `node` is a cluster switch.
    pub fn is_switch(&self, node: NodeId) -> bool {
        node.raw() >= self.total_gpus() && node.raw() < self.total_gpus() + self.clusters
    }

    /// The GPU behind an endpoint node, if it is one.
    pub fn node_gpu(&self, node: NodeId) -> Option<GpuId> {
        (node.raw() < self.total_gpus()).then(|| GpuId(node.raw()))
    }

    /// Cluster a node belongs to (a GPU's cluster, or a switch's own).
    pub fn node_cluster(&self, node: NodeId) -> ClusterId {
        if let Some(gpu) = self.node_gpu(node) {
            gpu.cluster(self.gpus_per_cluster)
        } else {
            assert!(self.is_switch(node), "unknown {node}");
            ClusterId(node.raw() - self.total_gpus())
        }
    }

    /// Cluster of a GPU.
    pub fn gpu_cluster(&self, gpu: GpuId) -> ClusterId {
        gpu.cluster(self.gpus_per_cluster)
    }

    /// True if traffic between the two endpoints crosses the
    /// lower-bandwidth inter-cluster network.
    pub fn crosses_clusters(&self, a: GpuId, b: GpuId) -> bool {
        self.gpu_cluster(a) != self.gpu_cluster(b)
    }

    /// GPUs belonging to `cluster`, in id order.
    pub fn cluster_gpus(&self, cluster: ClusterId) -> impl Iterator<Item = GpuId> + '_ {
        let base = cluster.raw() * self.gpus_per_cluster;
        (base..base + self.gpus_per_cluster).map(GpuId)
    }

    /// All GPUs in the node, in id order.
    pub fn all_gpus(&self) -> impl Iterator<Item = GpuId> + '_ {
        (0..self.total_gpus()).map(GpuId)
    }

    /// All clusters, in id order.
    pub fn all_clusters(&self) -> impl Iterator<Item = ClusterId> + '_ {
        (0..self.clusters).map(ClusterId)
    }

    /// Minimum cycle latency of any link that crosses between a GPU
    /// cluster's component set and the switch fabric — the conservative
    /// lookahead for running clusters and the fabric in separate
    /// parallel-scheduler domains. Every such crossing is a wire
    /// (GPU↔switch or switch↔switch), so this is [`WIRE_LATENCY`].
    pub fn min_cross_link_latency(&self) -> Cycle {
        WIRE_LATENCY
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frontier() -> Topology {
        Topology::new(&TopologyConfig {
            clusters: 2,
            gpus_per_cluster: 2,
            intra_gbps: 128.0,
            inter_gbps: 16.0,
        })
    }

    #[test]
    fn node_numbering() {
        let t = frontier();
        assert_eq!(t.total_gpus(), 4);
        assert_eq!(t.gpu_node(GpuId(0)), NodeId(0));
        assert_eq!(t.gpu_node(GpuId(3)), NodeId(3));
        assert_eq!(t.switch_node(ClusterId(0)), NodeId(4));
        assert_eq!(t.switch_node(ClusterId(1)), NodeId(5));
    }

    #[test]
    fn switch_detection() {
        let t = frontier();
        assert!(!t.is_switch(NodeId(3)));
        assert!(t.is_switch(NodeId(4)));
        assert!(t.is_switch(NodeId(5)));
        assert!(!t.is_switch(NodeId(6)));
    }

    #[test]
    fn node_to_gpu_and_cluster() {
        let t = frontier();
        assert_eq!(t.node_gpu(NodeId(2)), Some(GpuId(2)));
        assert_eq!(t.node_gpu(NodeId(4)), None);
        assert_eq!(t.node_cluster(NodeId(1)), ClusterId(0));
        assert_eq!(t.node_cluster(NodeId(2)), ClusterId(1));
        assert_eq!(t.node_cluster(NodeId(5)), ClusterId(1));
    }

    #[test]
    fn cluster_membership() {
        let t = frontier();
        let c0: Vec<_> = t.cluster_gpus(ClusterId(0)).collect();
        assert_eq!(c0, vec![GpuId(0), GpuId(1)]);
        let c1: Vec<_> = t.cluster_gpus(ClusterId(1)).collect();
        assert_eq!(c1, vec![GpuId(2), GpuId(3)]);
        assert!(t.crosses_clusters(GpuId(0), GpuId(2)));
        assert!(!t.crosses_clusters(GpuId(2), GpuId(3)));
    }

    #[test]
    fn bigger_topology() {
        let t = Topology::new(&TopologyConfig {
            clusters: 4,
            gpus_per_cluster: 2,
            intra_gbps: 128.0,
            inter_gbps: 16.0,
        });
        assert_eq!(t.total_gpus(), 8);
        assert_eq!(t.switch_node(ClusterId(3)), NodeId(11));
        assert_eq!(t.node_cluster(NodeId(7)), ClusterId(3));
        assert_eq!(t.all_gpus().count(), 8);
        assert_eq!(t.all_clusters().count(), 4);
    }

    #[test]
    #[should_panic(expected = "unknown gpu")]
    fn unknown_gpu_panics() {
        frontier().gpu_node(GpuId(9));
    }
}
