//! Node naming, switch-graph construction and deterministic routing for
//! the interconnect: clusters of GPUs behind per-cluster edge switches,
//! with the edge switches wired into one of three fabrics —
//!
//! * **mesh** — every edge switch links directly to every other (the
//!   paper's Figure 2 node is the 2-switch/1-link case),
//! * **fat-tree** — a two-tier Clos: every edge switch uplinks to each
//!   core switch, packets route up to a deterministic core
//!   (`dst_gpu % cores`) and back down,
//! * **3D torus** — dimension-order routing (X, then Y, then Z) with
//!   dateline virtual channels on the wrap links for deadlock freedom.
//!
//! The topology is a pure description: [`SwitchSpec`] lists each switch's
//! ports ([`FabricLink`]) and its full routing table, and the system
//! builder materializes switches and wires from it. Routing is entirely
//! static, so path selection is identical under every scheduler.

use std::collections::BTreeMap;

use netcrafter_proto::{ClusterId, FabricConfig, GpuId, NodeId, TopologyConfig};
use netcrafter_sim::Cycle;

/// Cycle latency of every GPU↔switch wire (bandwidth differences are
/// modelled by the port rate limiters, not by latency). Switch↔switch
/// fabric wires use [`TopologyConfig::fabric_link_cycles`] instead, which
/// the paper-baseline mesh pins to the same single cycle.
pub const WIRE_LATENCY: Cycle = 1;

/// Checked narrowing for switch/port index arithmetic, which is bounded
/// by the `u16` configuration fields by construction.
fn narrow16(x: usize) -> u16 {
    u16::try_from(x).expect("index fits in u16")
}

/// One port of a switch: the link to a neighboring node.
#[derive(Debug, Clone)]
pub struct FabricLink {
    /// Node on the other end (a GPU's RDMA engine or another switch).
    pub peer: NodeId,
    /// The paired port's index at the peer (0 for GPU endpoints, which
    /// have a single implicit port).
    pub peer_port: u16,
    /// Wire propagation latency in cycles.
    pub latency: Cycle,
    /// True for switch↔switch fabric links, which run at the
    /// inter-cluster rate; GPU links run at the intra-cluster rate.
    pub is_inter: bool,
    /// Fraction of the link class's bandwidth this port gets. Torus
    /// virtual channels split one physical wrap-capable channel in two
    /// (0.5 each); everything else is 1.0.
    pub rate_scale: f64,
}

/// The static description of one switch: identity, ports in wiring
/// order, and the complete deterministic routing table.
#[derive(Debug, Clone)]
pub struct SwitchSpec {
    /// Network node id of this switch.
    pub node: NodeId,
    /// The cluster this switch fronts, or `None` for fat-tree core
    /// switches, which have no attached GPUs.
    pub cluster: Option<ClusterId>,
    /// Ports in construction order: attached GPUs first (edge switches),
    /// then fabric links in a fabric-specific deterministic order.
    pub links: Vec<FabricLink>,
    /// Output port for every other node in the network (GPUs and
    /// switches), so both endpoint traffic and switch-addressed stitched
    /// flits route without dynamic state.
    pub routes: BTreeMap<NodeId, usize>,
}

impl SwitchSpec {
    /// Port index of the link whose peer is `node`, preferring the
    /// routed port when several parallel links exist (torus VCs).
    pub fn port_to(&self, node: NodeId) -> Option<usize> {
        if let Some(&p) = self.routes.get(&node) {
            if self.links[p].peer == node {
                return Some(p);
            }
        }
        self.links.iter().position(|l| l.peer == node)
    }
}

/// The static shape of the interconnect: which node ids exist, how they
/// map to GPUs, clusters and switches, and how flits route between them.
///
/// Node numbering: GPUs occupy `0..total_gpus`, cluster (edge) switches
/// occupy `total_gpus..total_gpus + clusters`, and fat-tree core switches
/// follow at `total_gpus + clusters..`.
#[derive(Debug, Clone)]
pub struct Topology {
    clusters: u16,
    gpus_per_cluster: u16,
    fabric: FabricConfig,
    fabric_latency: Cycle,
    switches: Vec<SwitchSpec>,
}

impl Topology {
    /// Builds the switch graph and routing tables from a configuration.
    pub fn new(cfg: &TopologyConfig) -> Self {
        assert!(cfg.clusters > 0 && cfg.gpus_per_cluster > 0);
        assert!(cfg.fabric_link_cycles > 0);
        let mut t = Self {
            clusters: cfg.clusters,
            gpus_per_cluster: cfg.gpus_per_cluster,
            fabric: cfg.fabric,
            fabric_latency: cfg.fabric_link_cycles as Cycle,
            switches: Vec::new(),
        };
        match cfg.fabric {
            FabricConfig::Mesh => t.build_mesh(),
            FabricConfig::FatTree { cores } => t.build_fat_tree(cores),
            FabricConfig::Torus { x, y, z } => {
                assert_eq!(
                    (x as u32) * (y as u32) * (z as u32),
                    cfg.clusters as u32,
                    "torus dimensions must cover every cluster"
                );
                t.build_torus([x, y, z]);
            }
        }
        t.fill_routes();
        t.check_symmetry();
        t
    }

    /// Number of clusters.
    pub fn clusters(&self) -> u16 {
        self.clusters
    }

    /// GPUs per cluster.
    pub fn gpus_per_cluster(&self) -> u16 {
        self.gpus_per_cluster
    }

    /// Total GPUs in the node.
    pub fn total_gpus(&self) -> u16 {
        self.clusters * self.gpus_per_cluster
    }

    /// The fabric wiring the switches together.
    pub fn fabric(&self) -> FabricConfig {
        self.fabric
    }

    /// Wire latency of every switch↔switch fabric link.
    pub fn fabric_latency(&self) -> Cycle {
        self.fabric_latency
    }

    /// Total switches: one edge switch per cluster plus any core tier.
    pub fn num_switches(&self) -> u16 {
        narrow16(self.switches.len())
    }

    /// Static description of switch `idx` (edge switches first, in
    /// cluster order, then core switches).
    pub fn switch_spec(&self, idx: usize) -> &SwitchSpec {
        &self.switches[idx]
    }

    /// All switch descriptions in node-id order.
    pub fn switch_specs(&self) -> impl Iterator<Item = &SwitchSpec> + '_ {
        self.switches.iter()
    }

    /// Network node of a GPU's RDMA engine.
    pub fn gpu_node(&self, gpu: GpuId) -> NodeId {
        assert!(gpu.raw() < self.total_gpus(), "unknown {gpu}");
        NodeId(gpu.raw())
    }

    /// Network node of a cluster's edge switch.
    pub fn switch_node(&self, cluster: ClusterId) -> NodeId {
        assert!(cluster.raw() < self.clusters, "unknown {cluster}");
        NodeId(self.total_gpus() + cluster.raw())
    }

    /// Dense index (into [`Self::switch_spec`]) of a switch node.
    pub fn switch_index(&self, node: NodeId) -> usize {
        assert!(self.is_switch(node), "unknown {node}");
        (node.raw() - self.total_gpus()) as usize
    }

    /// True if `node` is a switch (edge or core).
    pub fn is_switch(&self, node: NodeId) -> bool {
        node.raw() >= self.total_gpus() && node.raw() < self.total_gpus() + self.num_switches()
    }

    /// The GPU behind an endpoint node, if it is one.
    pub fn node_gpu(&self, node: NodeId) -> Option<GpuId> {
        (node.raw() < self.total_gpus()).then(|| GpuId(node.raw()))
    }

    /// Cluster a node belongs to: a GPU's cluster or an edge switch's
    /// own. Panics for fat-tree core switches, which front no cluster.
    pub fn node_cluster(&self, node: NodeId) -> ClusterId {
        if let Some(gpu) = self.node_gpu(node) {
            gpu.cluster(self.gpus_per_cluster)
        } else {
            assert!(self.is_switch(node), "unknown {node}");
            self.switches[self.switch_index(node)]
                .cluster
                .unwrap_or_else(|| panic!("{node} is a core switch with no cluster"))
        }
    }

    /// Cluster of a GPU.
    pub fn gpu_cluster(&self, gpu: GpuId) -> ClusterId {
        gpu.cluster(self.gpus_per_cluster)
    }

    /// Port index of `gpu`'s link at its edge switch (GPU ports come
    /// first, in cluster-local order).
    pub fn gpu_port_at_switch(&self, gpu: GpuId) -> u16 {
        assert!(gpu.raw() < self.total_gpus(), "unknown {gpu}");
        gpu.raw() % self.gpus_per_cluster
    }

    /// True if traffic between the two endpoints crosses the
    /// lower-bandwidth inter-cluster fabric.
    pub fn crosses_clusters(&self, a: GpuId, b: GpuId) -> bool {
        self.gpu_cluster(a) != self.gpu_cluster(b)
    }

    /// GPUs belonging to `cluster`, in id order.
    pub fn cluster_gpus(&self, cluster: ClusterId) -> impl Iterator<Item = GpuId> + '_ {
        let base = cluster.raw() * self.gpus_per_cluster;
        (base..base + self.gpus_per_cluster).map(GpuId)
    }

    /// All GPUs in the node, in id order.
    pub fn all_gpus(&self) -> impl Iterator<Item = GpuId> + '_ {
        (0..self.total_gpus()).map(GpuId)
    }

    /// All clusters, in id order.
    pub fn all_clusters(&self) -> impl Iterator<Item = ClusterId> + '_ {
        (0..self.clusters).map(ClusterId)
    }

    /// Minimum cycle latency over every link in the graph — the
    /// conservative global lower bound. The parallel partition prefers
    /// the per-domain-pair latencies (see
    /// [`Self::min_latency_between_switches`]); this remains as the
    /// floor for anything that needs a single scalar.
    pub fn min_cross_link_latency(&self) -> Cycle {
        self.switches
            .iter()
            .flat_map(|s| s.links.iter().map(|l| l.latency))
            .min()
            .unwrap_or(WIRE_LATENCY)
            .min(WIRE_LATENCY)
    }

    /// Minimum latency of any direct link between two switches, if they
    /// are adjacent.
    pub fn min_latency_between_switches(&self, a: usize, b: usize) -> Option<Cycle> {
        let bn = self.switches[b].node;
        self.switches[a]
            .links
            .iter()
            .filter(|l| l.peer == bn)
            .map(|l| l.latency)
            .min()
    }

    /// The sequence of switch nodes a flit from `src` to `dst` traverses,
    /// following the static route tables. Both endpoints are GPUs; the
    /// returned path excludes them. Panics if the tables loop.
    pub fn switch_path(&self, src: GpuId, dst: GpuId) -> Vec<NodeId> {
        let dst_node = self.gpu_node(dst);
        let mut here = self.switch_node(self.gpu_cluster(src));
        let mut path = Vec::new();
        loop {
            path.push(here);
            assert!(
                path.len() <= self.switches.len(),
                "routing loop from {src} to {dst}: {path:?}"
            );
            let spec = &self.switches[self.switch_index(here)];
            let port = *spec
                .routes
                .get(&dst_node)
                .unwrap_or_else(|| panic!("{here} has no route to {dst_node}"));
            let next = spec.links[port].peer;
            if next == dst_node {
                return path;
            }
            here = next;
        }
    }

    /// Number of switch hops between two GPUs (1 when they share an edge
    /// switch).
    pub fn hops(&self, src: GpuId, dst: GpuId) -> usize {
        self.switch_path(src, dst).len()
    }

    /// Mean switch-hop count over every ordered cross-cluster GPU pair —
    /// the x-axis of the topology-sweep figure.
    pub fn mean_cross_hops(&self) -> f64 {
        let mut total = 0usize;
        let mut pairs = 0usize;
        for a in self.all_gpus() {
            for b in self.all_gpus() {
                if self.crosses_clusters(a, b) {
                    total += self.hops(a, b);
                    pairs += 1;
                }
            }
        }
        if pairs == 0 {
            0.0
        } else {
            total as f64 / pairs as f64
        }
    }

    // ---- construction ----

    /// Allocates switch `idx` with its GPU-facing ports (edge switches
    /// front `cluster`; core switches pass `None`).
    fn push_switch(&mut self, cluster: Option<ClusterId>) {
        let node = NodeId(self.total_gpus() + narrow16(self.switches.len()));
        let mut links = Vec::new();
        if let Some(c) = cluster {
            for gpu in
                (c.raw() * self.gpus_per_cluster..(c.raw() + 1) * self.gpus_per_cluster).map(GpuId)
            {
                links.push(FabricLink {
                    peer: NodeId(gpu.raw()),
                    peer_port: 0,
                    latency: WIRE_LATENCY,
                    is_inter: false,
                    rate_scale: 1.0,
                });
            }
        }
        self.switches.push(SwitchSpec {
            node,
            cluster,
            links,
            routes: BTreeMap::new(),
        });
    }

    fn fabric_link(&self, peer_idx: usize, peer_port: usize, rate_scale: f64) -> FabricLink {
        FabricLink {
            peer: NodeId(self.total_gpus() + narrow16(peer_idx)),
            peer_port: narrow16(peer_port),
            latency: self.fabric_latency,
            is_inter: true,
            rate_scale,
        }
    }

    /// Full mesh: every edge switch links to every other, ports in peer
    /// cluster order (this reproduces the legacy star for 2 clusters).
    fn build_mesh(&mut self) {
        let c = self.clusters as usize;
        for cluster in 0..c {
            self.push_switch(Some(ClusterId(narrow16(cluster))));
        }
        let g = self.gpus_per_cluster as usize;
        // Port of peer `a` in switch `b`'s list: GPU ports, then peers in
        // order with self skipped.
        let port_of = |a: usize, b: usize| g + if a < b { a } else { a - 1 };
        for a in 0..c {
            for b in 0..c {
                if a == b {
                    continue;
                }
                let link = self.fabric_link(b, port_of(a, b), 1.0);
                self.switches[a].links.push(link);
            }
        }
    }

    /// Two-tier fat-tree: edge switch `e` uplinks to every core; core
    /// `k`'s downlink to edge `e` sits at port `e`.
    fn build_fat_tree(&mut self, cores: u16) {
        assert!(cores > 0, "fat-tree needs at least one core switch");
        let c = self.clusters as usize;
        let g = self.gpus_per_cluster as usize;
        for cluster in 0..c {
            self.push_switch(Some(ClusterId(narrow16(cluster))));
        }
        for _ in 0..cores {
            self.push_switch(None);
        }
        for e in 0..c {
            for k in 0..cores as usize {
                let up = self.fabric_link(c + k, e, 1.0);
                self.switches[e].links.push(up);
                let down = self.fabric_link(e, g + k, 1.0);
                self.switches[c + k].links.push(down);
            }
        }
    }

    /// 3D torus of edge switches. Each ring dimension of length ≥ 3
    /// contributes two directions × two virtual channels (dateline
    /// deadlock avoidance, each VC at half the physical rate); length-2
    /// rings are a single full-rate bidirectional link; length-1 rings
    /// contribute nothing.
    fn build_torus(&mut self, dims: [u16; 3]) {
        let c = self.clusters as usize;
        for cluster in 0..c {
            self.push_switch(Some(ClusterId(narrow16(cluster))));
        }
        let g = self.gpus_per_cluster as usize;
        // Deterministic port layout after the GPU ports: for each
        // dimension (with size > 1), either one port (size 2) or four
        // ports (+vc0, +vc1, -vc0, -vc1).
        let port_base = |dim: usize| {
            g + dims[..dim]
                .iter()
                .map(|&d| match d {
                    0 | 1 => 0usize,
                    2 => 1,
                    _ => 4,
                })
                .sum::<usize>()
        };
        let port_of = |dim: usize, positive: bool, vc: usize| {
            port_base(dim)
                + if dims[dim] == 2 {
                    0
                } else {
                    (if positive { 0 } else { 2 }) + vc
                }
        };
        for s in 0..c {
            let coords = Self::torus_coords(s, dims);
            for dim in 0..3 {
                let n = dims[dim] as usize;
                if n < 2 {
                    continue;
                }
                let neighbor = |delta: isize| -> usize {
                    let mut nc = coords;
                    nc[dim] =
                        narrow16((coords[dim] as isize + delta).rem_euclid(n as isize) as usize);
                    Self::torus_index(nc, dims)
                };
                if n == 2 {
                    // +1 and -1 are the same switch: one full-rate link;
                    // the pair port is the peer's single port in this dim.
                    let link = self.fabric_link(neighbor(1), port_of(dim, true, 0), 1.0);
                    self.switches[s].links.push(link);
                } else {
                    for (positive, delta) in [(true, 1isize), (false, -1)] {
                        let peer = neighbor(delta);
                        for vc in 0..2 {
                            // My +dir port pairs with the peer's -dir port
                            // on the same VC (and vice versa).
                            let link = self.fabric_link(peer, port_of(dim, !positive, vc), 0.5);
                            self.switches[s].links.push(link);
                        }
                    }
                }
            }
        }
    }

    /// Torus coordinates of switch `idx`: X fastest-varying.
    fn torus_coords(idx: usize, dims: [u16; 3]) -> [u16; 3] {
        let x = dims[0] as usize;
        let y = dims[1] as usize;
        [
            narrow16(idx % x),
            narrow16((idx / x) % y),
            narrow16(idx / (x * y)),
        ]
    }

    /// Inverse of [`Self::torus_coords`].
    fn torus_index(c: [u16; 3], dims: [u16; 3]) -> usize {
        c[0] as usize + dims[0] as usize * (c[1] as usize + dims[1] as usize * c[2] as usize)
    }

    /// Output port at switch `here` for a packet addressed to switch
    /// `dst` (dense indices, `here != dst`).
    fn next_hop_port(&self, here: usize, dst: usize) -> usize {
        let g = self.gpus_per_cluster as usize;
        match self.fabric {
            FabricConfig::Mesh => {
                // Direct link, ports in peer order with self skipped.
                g + if dst < here { dst } else { dst - 1 }
            }
            FabricConfig::FatTree { cores } => {
                let c = self.clusters as usize;
                if here < c {
                    // Edge: up to the deterministic core for this edge
                    // destination (cores are addressed directly).
                    if dst >= c {
                        g + (dst - c)
                    } else {
                        g + dst % cores as usize
                    }
                } else if dst >= c {
                    // Core to core: no direct link exists and no traffic
                    // ever takes this path (stitched flits only address
                    // adjacent switches); detour via edge 0 keeps the
                    // table total and deterministic.
                    0
                } else {
                    // Core: down to the destination edge.
                    dst
                }
            }
            FabricConfig::Torus { x, y, z } => {
                let dims = [x, y, z];
                let a = Self::torus_coords(here, dims);
                let b = Self::torus_coords(dst, dims);
                // Dimension-order: correct the first differing dimension.
                let dim = (0..3).find(|&d| a[d] != b[d]).expect("here != dst");
                let n = dims[dim] as usize;
                let port_base = g + dims[..dim]
                    .iter()
                    .map(|&d| match d {
                        0 | 1 => 0usize,
                        2 => 1,
                        _ => 4,
                    })
                    .sum::<usize>();
                if n == 2 {
                    return port_base;
                }
                let (ai, bi) = (a[dim] as usize, b[dim] as usize);
                let dist_pos = (bi + n - ai) % n;
                // Minimal direction; exact ties break positive.
                let positive = dist_pos * 2 <= n;
                // Dateline VC: while the remaining path in this dimension
                // still crosses the wrap edge, ride VC1; after the wrap
                // (and on wrap-free paths) ride VC0. The resulting channel
                // order (VC1 ring, wrap, VC0 ring) is total, so the
                // channel dependency graph is acyclic.
                let wraps = if positive { ai > bi } else { ai < bi };
                port_base + (if positive { 0 } else { 2 }) + wraps as usize
            }
        }
    }

    /// Populates every switch's route table with an entry per foreign
    /// node (all GPUs and all other switches).
    fn fill_routes(&mut self) {
        for here in 0..self.switches.len() {
            let mut routes = BTreeMap::new();
            for gpu in 0..self.total_gpus() {
                let gc = (gpu / self.gpus_per_cluster) as usize;
                let port = if Some(ClusterId(narrow16(gc))) == self.switches[here].cluster {
                    (gpu % self.gpus_per_cluster) as usize
                } else {
                    self.next_hop_to_edge(here, gc, GpuId(gpu))
                };
                routes.insert(NodeId(gpu), port);
            }
            for other in 0..self.switches.len() {
                if other != here {
                    routes.insert(
                        NodeId(self.total_gpus() + narrow16(other)),
                        self.next_hop_port(here, other),
                    );
                }
            }
            for (&dst, &port) in &routes {
                assert!(
                    port < self.switches[here].links.len(),
                    "switch {} routes {dst} to missing port {port}",
                    self.switches[here].node
                );
            }
            self.switches[here].routes = routes;
        }
    }

    /// Next-hop port at switch `here` for a GPU living behind edge
    /// switch `edge`. Fat-trees spread GPUs over cores by destination
    /// GPU, every other fabric routes by destination switch.
    fn next_hop_to_edge(&self, here: usize, edge: usize, gpu: GpuId) -> usize {
        if here == edge {
            return (gpu.raw() % self.gpus_per_cluster) as usize;
        }
        if let FabricConfig::FatTree { cores } = self.fabric {
            let c = self.clusters as usize;
            if here < c {
                // Up-route: D-mod-k on the destination GPU, so the core
                // choice (and thus the whole path) is a pure function of
                // the destination.
                return self.gpus_per_cluster as usize + (gpu.raw() as usize % cores as usize);
            }
        }
        self.next_hop_port(here, edge)
    }

    /// Debug validation: every fabric link's `peer_port` really is the
    /// paired port at the peer.
    fn check_symmetry(&self) {
        for s in &self.switches {
            for (i, l) in s.links.iter().enumerate() {
                if !l.is_inter {
                    continue;
                }
                let peer = &self.switches[self.switch_index(l.peer)];
                let back = &peer.links[l.peer_port as usize];
                assert_eq!(
                    back.peer, s.node,
                    "asymmetric wiring: {}:{} -> {}:{}",
                    s.node, i, l.peer, l.peer_port
                );
                assert_eq!(
                    back.peer_port as usize, i,
                    "asymmetric pairing: {}:{} -> {}:{}",
                    s.node, i, l.peer, l.peer_port
                );
                assert_eq!(back.latency, l.latency);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(clusters: u16, gpus_per_cluster: u16, fabric: FabricConfig) -> TopologyConfig {
        TopologyConfig {
            clusters,
            gpus_per_cluster,
            intra_gbps: 128.0,
            inter_gbps: 16.0,
            fabric,
            fabric_link_cycles: if fabric == FabricConfig::Mesh { 1 } else { 4 },
        }
    }

    fn frontier() -> Topology {
        Topology::new(&cfg(2, 2, FabricConfig::Mesh))
    }

    #[test]
    fn node_numbering() {
        let t = frontier();
        assert_eq!(t.total_gpus(), 4);
        assert_eq!(t.gpu_node(GpuId(0)), NodeId(0));
        assert_eq!(t.gpu_node(GpuId(3)), NodeId(3));
        assert_eq!(t.switch_node(ClusterId(0)), NodeId(4));
        assert_eq!(t.switch_node(ClusterId(1)), NodeId(5));
    }

    #[test]
    fn switch_detection() {
        let t = frontier();
        assert!(!t.is_switch(NodeId(3)));
        assert!(t.is_switch(NodeId(4)));
        assert!(t.is_switch(NodeId(5)));
        assert!(!t.is_switch(NodeId(6)));
    }

    #[test]
    fn node_to_gpu_and_cluster() {
        let t = frontier();
        assert_eq!(t.node_gpu(NodeId(2)), Some(GpuId(2)));
        assert_eq!(t.node_gpu(NodeId(4)), None);
        assert_eq!(t.node_cluster(NodeId(1)), ClusterId(0));
        assert_eq!(t.node_cluster(NodeId(2)), ClusterId(1));
        assert_eq!(t.node_cluster(NodeId(5)), ClusterId(1));
    }

    #[test]
    fn cluster_membership() {
        let t = frontier();
        let c0: Vec<_> = t.cluster_gpus(ClusterId(0)).collect();
        assert_eq!(c0, vec![GpuId(0), GpuId(1)]);
        let c1: Vec<_> = t.cluster_gpus(ClusterId(1)).collect();
        assert_eq!(c1, vec![GpuId(2), GpuId(3)]);
        assert!(t.crosses_clusters(GpuId(0), GpuId(2)));
        assert!(!t.crosses_clusters(GpuId(2), GpuId(3)));
    }

    #[test]
    fn bigger_topology() {
        let t = Topology::new(&cfg(4, 2, FabricConfig::Mesh));
        assert_eq!(t.total_gpus(), 8);
        assert_eq!(t.switch_node(ClusterId(3)), NodeId(11));
        assert_eq!(t.node_cluster(NodeId(7)), ClusterId(3));
        assert_eq!(t.all_gpus().count(), 8);
        assert_eq!(t.all_clusters().count(), 4);
    }

    #[test]
    #[should_panic(expected = "unknown gpu")]
    fn unknown_gpu_panics() {
        frontier().gpu_node(GpuId(9));
    }

    #[test]
    fn mesh_reproduces_legacy_star() {
        let t = frontier();
        assert_eq!(t.num_switches(), 2);
        let s0 = t.switch_spec(0);
        // GPU ports first, then the single inter link.
        assert_eq!(s0.links.len(), 3);
        assert_eq!(s0.links[0].peer, NodeId(0));
        assert_eq!(s0.links[1].peer, NodeId(1));
        assert_eq!(s0.links[2].peer, NodeId(5));
        assert!(s0.links[2].is_inter && !s0.links[0].is_inter);
        assert_eq!(s0.links[2].peer_port, 2);
        assert_eq!(s0.routes[&NodeId(3)], 2);
        assert_eq!(s0.routes[&NodeId(1)], 1);
        assert_eq!(t.hops(GpuId(0), GpuId(3)), 2);
        assert_eq!(t.hops(GpuId(0), GpuId(1)), 1);
    }

    #[test]
    fn fat_tree_routes_up_and_down() {
        let t = Topology::new(&cfg(4, 2, FabricConfig::FatTree { cores: 2 }));
        assert_eq!(t.num_switches(), 6);
        assert_eq!(t.total_gpus(), 8);
        // GPU 7 lives behind edge 3; its D-mod-k core is 7 % 2 = core 1.
        let path = t.switch_path(GpuId(0), GpuId(7));
        assert_eq!(
            path,
            vec![
                t.switch_node(ClusterId(0)),
                NodeId(8 + 4 + 1),
                t.switch_node(ClusterId(3))
            ]
        );
        // Every GPU pair routes in ≤ 3 switch hops and path choice is a
        // pure function of the destination (D-mod-k): same dst, same core.
        for dst in t.all_gpus() {
            let mut cores_seen = std::collections::BTreeSet::new();
            for src in t.all_gpus() {
                if src == dst || !t.crosses_clusters(src, dst) {
                    continue;
                }
                let p = t.switch_path(src, dst);
                assert_eq!(p.len(), 3);
                cores_seen.insert(p[1]);
            }
            assert!(cores_seen.len() <= 1, "dst {dst} used cores {cores_seen:?}");
        }
        assert!((t.mean_cross_hops() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn torus_dimension_order_routing() {
        let t = Topology::new(&cfg(8, 1, FabricConfig::Torus { x: 2, y: 2, z: 2 }));
        assert_eq!(t.num_switches(), 8);
        // GPU g sits on switch g; route 0 -> 7 must correct X, then Y,
        // then Z: (0,0,0) -> (1,0,0) -> (1,1,0) -> (1,1,1).
        let path = t.switch_path(GpuId(0), GpuId(7));
        let sw = |i: u16| NodeId(8 + i);
        assert_eq!(path, vec![sw(0), sw(1), sw(3), sw(7)]);
        // 2-rings: single port per dimension, full rate, no VCs.
        let s0 = t.switch_spec(0);
        assert_eq!(s0.links.len(), 1 + 3);
        assert!(s0.links.iter().skip(1).all(|l| l.rate_scale == 1.0));
    }

    #[test]
    fn torus_dateline_vc_on_wrap_paths() {
        let t = Topology::new(&cfg(4, 1, FabricConfig::Torus { x: 4, y: 1, z: 1 }));
        // Ring of 4: ports at each switch are gpu, +vc0, +vc1, -vc0, -vc1.
        let s3 = t.switch_spec(3);
        assert_eq!(s3.links.len(), 5);
        assert!(s3.links.iter().skip(1).all(|l| l.rate_scale == 0.5));
        // 3 -> 1 goes +1 around the wrap edge (3 -> 0 -> 1): the first
        // hop still faces the wrap, so it rides VC1 (+dir port, vc 1).
        assert_eq!(s3.routes[&NodeId(1)], 2);
        // After the wrap at switch 0 the path is wrap-free: VC0.
        let s0 = t.switch_spec(0);
        assert_eq!(s0.routes[&NodeId(1)], 1);
        // 0 -> 1 never wraps: VC0 all the way.
        assert_eq!(
            t.switch_path(GpuId(0), GpuId(1)),
            vec![NodeId(4), NodeId(5)]
        );
        // Ties (distance exactly n/2) break positive: 0 -> 2 via +1.
        assert_eq!(
            t.switch_path(GpuId(0), GpuId(2)),
            vec![NodeId(4), NodeId(5), NodeId(6)]
        );
        // Minimal direction otherwise: 0 -> 3 is one -1 hop across the
        // wrap edge, so it rides VC1 (-dir port, vc 1).
        assert_eq!(s0.routes[&NodeId(3)], 4);
        assert_eq!(t.hops(GpuId(0), GpuId(3)), 2);
    }

    #[test]
    fn torus_channel_order_is_acyclic() {
        // Enumerate every channel dependency (consecutive fabric hops of
        // every route) on a 4x4x1 torus and check the dateline ordering
        // admits a topological rank — i.e. routing cannot deadlock.
        let t = Topology::new(&cfg(16, 1, FabricConfig::Torus { x: 4, y: 4, z: 1 }));
        // The dateline order (VC1 ring, wrap edge, VC0 ring, per
        // dimension+direction) is total, so it suffices to check each
        // path's channel sequence is monotone in it: dimensions only
        // increase, direction never flips within a dimension, and VC
        // never upgrades 0 -> 1 (the dateline is crossed at most once).
        for src in t.all_gpus() {
            for dst in t.all_gpus() {
                if src == dst || !t.crosses_clusters(src, dst) {
                    continue;
                }
                let path = t.switch_path(src, dst);
                let dst_node = t.gpu_node(dst);
                let mut last: Option<(usize, usize, usize)> = None; // dim, dir, vc
                for here in &path {
                    let spec = t.switch_spec(t.switch_index(*here));
                    let port = spec.routes[&dst_node];
                    if !spec.links[port].is_inter {
                        break;
                    }
                    let fabric_port = port - 1;
                    let key = (fabric_port / 4, (fabric_port % 4) / 2, fabric_port % 2);
                    if let Some(prev) = last {
                        // Within a dimension+direction, VC never goes
                        // 0 -> 1 (dateline is crossed at most once).
                        if prev.0 == key.0 {
                            assert_eq!(prev.1, key.1, "direction flip {src}->{dst}");
                            assert!(
                                !(prev.2 == 0 && key.2 == 1),
                                "VC0 -> VC1 upgrade on {src}->{dst}"
                            );
                        } else {
                            assert!(prev.0 < key.0, "dimension order violated");
                        }
                    }
                    last = Some(key);
                }
            }
        }
    }

    #[test]
    fn every_switch_routes_every_foreign_node() {
        for t in [
            Topology::new(&cfg(2, 2, FabricConfig::Mesh)),
            Topology::new(&cfg(4, 2, FabricConfig::FatTree { cores: 2 })),
            Topology::new(&cfg(8, 2, FabricConfig::FatTree { cores: 4 })),
            Topology::new(&cfg(8, 1, FabricConfig::Torus { x: 2, y: 2, z: 2 })),
            Topology::new(&cfg(12, 1, FabricConfig::Torus { x: 3, y: 2, z: 2 })),
        ] {
            let nodes = t.total_gpus() + t.num_switches();
            for s in t.switch_specs() {
                // Cores route to every GPU and switch; so do edges.
                let expected = nodes as usize - 1;
                assert_eq!(s.routes.len(), expected, "at {}", s.node);
            }
            // And every GPU pair actually terminates.
            for a in t.all_gpus() {
                for b in t.all_gpus() {
                    if a != b {
                        assert!(t.hops(a, b) >= 1);
                    }
                }
            }
        }
    }

    #[test]
    fn per_pair_latencies_are_heterogeneous() {
        let t = Topology::new(&cfg(4, 2, FabricConfig::FatTree { cores: 2 }));
        assert_eq!(t.fabric_latency(), 4);
        assert_eq!(t.min_cross_link_latency(), 1); // GPU wires
        assert_eq!(t.min_latency_between_switches(0, 4), Some(4));
        assert_eq!(t.min_latency_between_switches(0, 1), None); // not adjacent
        let mesh = frontier();
        assert_eq!(mesh.min_latency_between_switches(0, 1), Some(1));
    }
}
