//! Packet ⇄ flit conversion: segmentation at the sending RDMA engine
//! (access-flow step 4b of Figure 2) and reassembly at the receiver
//! (step 4e).
//!
//! The reassembler is deliberately order-insensitive: it counts received
//! bytes per packet id. This matters because Stitching may deliver a
//! packet's *tail* flit ahead of its body — the tail rides inside an
//! earlier parent flit — and the paper's un-stitching engine likewise
//! "reunites each extracted flit with the remaining portion of its
//! original packet" by id.

use netcrafter_proto::{Chunk, Flit, OrderedMap, Packet, PacketId};
use netcrafter_sim::snapshot::{Snap, SnapshotError, SnapshotReader, SnapshotWriter};

/// Segments packets into fixed-size flits.
#[derive(Debug, Clone)]
pub struct Segmenter {
    flit_bytes: u32,
}

impl Segmenter {
    /// Creates a segmenter for `flit_bytes`-sized flits (16 in the
    /// baseline, 8 in the Figure 21 study).
    pub fn new(flit_bytes: u32) -> Self {
        assert!(flit_bytes > 0, "flit size must be positive");
        Self { flit_bytes }
    }

    /// Configured flit size.
    pub fn flit_bytes(&self) -> u32 {
        self.flit_bytes
    }

    /// Splits `packet` into its wire flits. The first flit carries the
    /// header; the last carries the packet descriptor for reassembly.
    pub fn segment(&self, packet: Packet) -> Vec<Flit> {
        let wire = packet.wire_bytes();
        let n = packet.flit_count(self.flit_bytes).max(1);
        let class = packet.class();
        let mut flits = Vec::with_capacity(n as usize);
        let mut remaining = wire;
        let dst = packet.dst;
        let id = packet.id;
        let kind = packet.kind;
        for seq in 0..n {
            let bytes = remaining.min(self.flit_bytes);
            remaining -= bytes;
            let is_tail = seq == n - 1;
            let chunk = Chunk {
                packet: id,
                kind,
                bytes,
                meta_bytes: 0,
                has_header: seq == 0,
                is_tail,
                seq,
                dst,
                class,
                packet_info: is_tail.then(|| Box::new(packet.clone())),
            };
            flits.push(Flit::single(self.flit_bytes, chunk));
        }
        debug_assert_eq!(remaining, 0);
        flits
    }
}

/// Progress record for one partially received packet.
#[derive(Debug, Default)]
struct Partial {
    received_bytes: u32,
    info: Option<Box<Packet>>,
}

/// Rebuilds packets from arriving flits, tolerating out-of-order chunk
/// arrival (tails may overtake bodies when stitched).
#[derive(Debug, Default)]
pub struct Reassembler {
    /// Keyed by packet id in first-flit-arrival order. An `OrderedMap`
    /// (not `std::collections::HashMap`, which the no-unordered-iteration
    /// lint bans from sim-facing crates) so that any future iteration —
    /// and the [`Reassembler::pending_ids`] diagnostic today — observes a
    /// deterministic order.
    pending: OrderedMap<PacketId, Partial>,
    completed: u64,
}

impl Reassembler {
    /// Creates an empty reassembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ingests one flit; returns every packet it completes. A stitched
    /// flit (normally un-stitched by the cluster switch before reaching an
    /// endpoint) is handled chunk-by-chunk, so endpoint behaviour is
    /// correct even for same-destination stitches that skip un-stitching.
    pub fn accept(&mut self, flit: Flit) -> Vec<Packet> {
        let mut done = Vec::new();
        for chunk in flit.chunks {
            let entry = self
                .pending
                .get_or_insert_with(chunk.packet, Partial::default);
            entry.received_bytes += chunk.bytes;
            if let Some(info) = chunk.packet_info {
                debug_assert!(entry.info.is_none(), "duplicate tail for {}", chunk.packet);
                entry.info = Some(info);
            }
            let complete = entry
                .info
                .as_ref()
                .is_some_and(|p| entry.received_bytes >= p.wire_bytes());
            if complete {
                let entry = self.pending.remove(&chunk.packet).expect("entry exists");
                let info = entry.info.expect("checked above");
                debug_assert_eq!(
                    entry.received_bytes,
                    info.wire_bytes(),
                    "byte over-run while reassembling {}",
                    info.id
                );
                self.completed += 1;
                done.push(*info);
            }
        }
        done
    }

    /// Packets still awaiting flits.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Ids of the packets still awaiting flits, in first-flit-arrival
    /// order (deterministic across runs — see the regression test).
    pub fn pending_ids(&self) -> Vec<PacketId> {
        self.pending.keys().copied().collect()
    }

    /// Packets completed so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }
}

impl Snap for Partial {
    fn save(&self, w: &mut SnapshotWriter) {
        self.received_bytes.save(w);
        self.info.save(w);
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Partial {
            received_bytes: Snap::load(r)?,
            info: Snap::load(r)?,
        })
    }
}

impl Snap for Reassembler {
    fn save(&self, w: &mut SnapshotWriter) {
        self.pending.save(w);
        self.completed.save(w);
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Reassembler {
            pending: Snap::load(r)?,
            completed: Snap::load(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcrafter_proto::{
        AccessId, GpuId, LineAddr, LineMask, MemReq, NodeId, PacketKind, PacketPayload,
        TrafficClass,
    };

    fn packet(id: u64, kind: PacketKind, payload: u32) -> Packet {
        Packet {
            id: PacketId(id),
            kind,
            src: NodeId(1),
            dst: NodeId(3),
            payload_bytes: payload,
            trim: None,
            inner: PacketPayload::Req(MemReq {
                access: AccessId(id),
                line: LineAddr(0x40 * id),
                write: false,
                mask: LineMask::span(0, 8),
                sectors: 0b1111,
                class: TrafficClass::Data,
                requester: GpuId(1),
                owner: GpuId(3),
                origin: netcrafter_proto::message::Origin::Cu(0),
            }),
        }
    }

    #[test]
    fn read_rsp_segments_into_five_flits() {
        let seg = Segmenter::new(16);
        let flits = seg.segment(packet(1, PacketKind::ReadRsp, 64));
        assert_eq!(flits.len(), 5);
        assert!(flits[0].chunks[0].has_header);
        assert!(!flits[0].chunks[0].is_tail);
        assert!(flits[4].chunks[0].is_tail);
        assert!(flits[4].chunks[0].packet_info.is_some());
        // First four flits are full; the tail holds the 4 spare bytes.
        for f in &flits[..4] {
            assert_eq!(f.used_bytes(), 16);
        }
        assert_eq!(flits[4].used_bytes(), 4);
        assert_eq!(flits[4].empty_bytes(), 12);
    }

    #[test]
    fn single_flit_packet_has_header_and_tail() {
        let seg = Segmenter::new(16);
        let flits = seg.segment(packet(2, PacketKind::ReadReq, 0));
        assert_eq!(flits.len(), 1);
        let c = &flits[0].chunks[0];
        assert!(c.has_header && c.is_tail);
        assert!(c.is_whole_packet());
        assert_eq!(c.bytes, 12);
        assert_eq!(flits[0].empty_bytes(), 4);
    }

    #[test]
    fn eight_byte_flits_produce_more_fragments() {
        let seg = Segmenter::new(8);
        let flits = seg.segment(packet(3, PacketKind::WriteReq, 64));
        assert_eq!(flits.len(), 10); // 76 bytes / 8
        assert_eq!(flits[9].used_bytes(), 4);
    }

    #[test]
    fn reassembly_in_order() {
        let seg = Segmenter::new(16);
        let p = packet(4, PacketKind::ReadRsp, 64);
        let mut r = Reassembler::new();
        let flits = seg.segment(p.clone());
        let n = flits.len();
        for (i, f) in flits.into_iter().enumerate() {
            let done = r.accept(f);
            if i + 1 == n {
                assert_eq!(done, vec![p.clone()]);
            } else {
                assert!(done.is_empty());
                assert_eq!(r.in_flight(), 1);
            }
        }
        assert_eq!(r.in_flight(), 0);
        assert_eq!(r.completed(), 1);
    }

    #[test]
    fn reassembly_tolerates_tail_first() {
        let seg = Segmenter::new(16);
        let p = packet(5, PacketKind::ReadRsp, 64);
        let mut flits = seg.segment(p.clone());
        let tail = flits.pop().unwrap();
        let mut r = Reassembler::new();
        assert!(r.accept(tail).is_empty(), "tail alone is not complete");
        let n = flits.len();
        for (i, f) in flits.into_iter().enumerate() {
            let done = r.accept(f);
            if i + 1 == n {
                assert_eq!(done, vec![p.clone()]);
            } else {
                assert!(done.is_empty());
            }
        }
    }

    #[test]
    fn interleaved_packets_reassemble_independently() {
        let seg = Segmenter::new(16);
        let a = packet(6, PacketKind::ReadRsp, 64);
        let b = packet(7, PacketKind::WriteReq, 64);
        let fa = seg.segment(a.clone());
        let fb = seg.segment(b.clone());
        let mut r = Reassembler::new();
        let mut done = Vec::new();
        for (x, y) in fa.into_iter().zip(fb) {
            done.extend(r.accept(x));
            done.extend(r.accept(y));
        }
        assert_eq!(done.len(), 2);
        assert!(done.contains(&a));
        assert!(done.contains(&b));
    }

    #[test]
    fn stitched_flit_completes_multiple_packets_at_endpoint() {
        let seg = Segmenter::new(16);
        // Two whole single-flit packets stitched together.
        let a = packet(8, PacketKind::ReadReq, 0);
        let b = packet(9, PacketKind::WriteRsp, 0);
        let mut fa = seg.segment(a.clone()).remove(0);
        let fb = seg.segment(b.clone()).remove(0);
        assert!(fa.stitch_cost(&fb).is_some());
        fa.stitch(fb);
        let mut r = Reassembler::new();
        let done = r.accept(fa);
        assert_eq!(done.len(), 2);
        assert!(done.contains(&a));
        assert!(done.contains(&b));
    }

    /// One seeded run of a pseudo-random segment/shuffle/reassemble
    /// workload: returns the completion order plus a mid-run and final
    /// snapshot of the pending-id order.
    fn seeded_reassembly_run(seed: u64) -> (Vec<PacketId>, Vec<PacketId>, Vec<PacketId>) {
        let seg = Segmenter::new(16);
        let mut flits = Vec::new();
        for id in 0..40u64 {
            let kind = match id % 3 {
                0 => PacketKind::ReadRsp,
                1 => PacketKind::WriteReq,
                _ => PacketKind::ReadRsp,
            };
            flits.extend(seg.segment(packet(id, kind, 64)));
        }
        // Deterministic Fisher–Yates with an in-tree LCG: same seed, same
        // interleaving of packets' flits.
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for i in (1..flits.len()).rev() {
            flits.swap(i, next() as usize % (i + 1));
        }
        let mut r = Reassembler::new();
        let mut completed_order = Vec::new();
        let mut mid_pending = Vec::new();
        let half = flits.len() / 2;
        for (i, f) in flits.into_iter().enumerate() {
            completed_order.extend(r.accept(f).into_iter().map(|p| p.id));
            if i + 1 == half {
                mid_pending = r.pending_ids();
            }
        }
        (completed_order, mid_pending, r.pending_ids())
    }

    #[test]
    fn reassembly_is_deterministic_across_identical_seeded_runs() {
        // Regression test for the HashMap → OrderedMap migration: two
        // runs of the same seed must produce the same completion order
        // *and* the same pending-set order at every point. With a
        // RandomState-seeded map the pending order differed run to run.
        let a = seeded_reassembly_run(0x5EED);
        let b = seeded_reassembly_run(0x5EED);
        assert_eq!(a, b);
        assert_eq!(a.0.len(), 40, "every packet completes");
        assert!(a.2.is_empty(), "nothing in flight at the end");
        assert!(!a.1.is_empty(), "mid-run snapshot saw in-flight packets");
        // A different interleaving still completes everything.
        let c = seeded_reassembly_run(0xBEEF);
        assert_eq!(c.0.len(), 40);
        assert_ne!(a.0, c.0, "different seeds interleave differently");
    }

    #[test]
    fn trimmed_response_reassembles_from_two_flits() {
        let seg = Segmenter::new(16);
        let p = packet(10, PacketKind::ReadRsp, 16); // trimmed to one sector
        let flits = seg.segment(p.clone());
        assert_eq!(flits.len(), 2);
        let mut r = Reassembler::new();
        assert!(r.accept(flits[0].clone()).is_empty());
        assert_eq!(r.accept(flits[1].clone()), vec![p]);
    }
}
