//! The cluster switch: per-port input pipelines, bounded buffers,
//! crossbar routing with back-pressure, and un-stitching of NetCrafter
//! flits arriving from a remote cluster.
//!
//! Modelled after the Akita switch MGPUSim uses (§5.1): each arriving flit
//! traverses a 30-cycle processing pipeline at 1 flit/cycle/port, then
//! waits in a bounded buffer for routing. Routing moves flits to output
//! buffers; a full output buffer pauses routing for that input, and the
//! held-back credits propagate the stall upstream.

use std::collections::BTreeMap;

use netcrafter_proto::{Flit, Message, Metrics, NodeId};
use netcrafter_sim::snapshot::{Snap, SnapshotError, SnapshotReader, SnapshotWriter};
use netcrafter_sim::{
    BurstOutcome, Component, ComponentId, Ctx, Cycle, DelayQueue, EventClass, Tracer, Wake,
};

use crate::port::{EgressPort, EgressQueue, EgressWire, PortSeries};

/// Everything needed to wire one bidirectional switch port.
pub struct SwitchPortSpec {
    /// Engine id of the component on the other end of the link.
    pub peer: ComponentId,
    /// Node id of that component (used to attribute arrivals and credits).
    pub peer_node: NodeId,
    /// The paired port's index at the peer: the value stamped as `link`
    /// on everything sent over this port, so the peer indexes its port
    /// array directly even when several parallel links join the same two
    /// nodes (torus virtual channels). 0 for single-port endpoints.
    pub peer_port: u16,
    /// Link bandwidth in flits per cycle.
    pub flits_per_cycle: f64,
    /// Credits granted by the downstream input buffer.
    pub initial_credits: u32,
    /// This port's input buffer capacity in flits.
    pub input_capacity: usize,
    /// Output buffer capacity in flits.
    pub output_capacity: usize,
    /// The egress queue implementation (FIFO, or NetCrafter's Cluster
    /// Queue on inter-cluster ports).
    pub queue: Box<dyn EgressQueue>,
    /// Wire propagation latency in cycles.
    pub wire_latency: u64,
    /// True for ports facing another cluster (the lower-bandwidth links
    /// NetCrafter optimizes); used for statistics attribution.
    pub is_inter: bool,
}

struct Port {
    // lint:allow(snapshot-field-parity) construction-time wiring; the restore target is built with the same topology
    peer: ComponentId,
    // lint:allow(snapshot-field-parity) construction-time wiring; the restore target is built with the same topology
    peer_node: NodeId,
    // lint:allow(snapshot-field-parity) construction-time wiring; the restore target is built with the same topology
    peer_port: u16,
    // lint:allow(snapshot-field-parity) construction-time config; identical in the restore target by construction
    wire_latency: u64,
    in_pipe: DelayQueue<Flit>,
    // lint:allow(snapshot-field-parity) construction-time config; identical in the restore target by construction
    in_capacity: usize,
    stalled: Option<Flit>,
    egress: EgressPort,
    // lint:allow(snapshot-field-parity) construction-time config; identical in the restore target by construction
    is_inter: bool,
}

impl Port {
    fn input_occupancy(&self) -> usize {
        self.in_pipe.len() + usize::from(self.stalled.is_some())
    }

    fn save_state(&self, w: &mut SnapshotWriter) {
        self.in_pipe.save(w);
        self.stalled.save(w);
        self.egress.save_state(w);
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        self.in_pipe = Snap::load(r)?;
        self.stalled = Snap::load(r)?;
        self.egress.load_state(r)
    }
}

/// Aggregate switch statistics.
#[derive(Debug, Clone, Default)]
pub struct SwitchStats {
    /// Flits accepted from links.
    pub arrived: u64,
    /// Stitched flits taken apart by this switch's un-stitching engine.
    pub unstitched_flits: u64,
    /// Constituent flits recovered by un-stitching.
    pub unstitched_chunks: u64,
    /// Routing stalls due to full output buffers (back-pressure events).
    pub output_stalls: u64,
}

impl Snap for SwitchStats {
    fn save(&self, w: &mut SnapshotWriter) {
        self.arrived.save(w);
        self.unstitched_flits.save(w);
        self.unstitched_chunks.save(w);
        self.output_stalls.save(w);
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(SwitchStats {
            arrived: Snap::load(r)?,
            unstitched_flits: Snap::load(r)?,
            unstitched_chunks: Snap::load(r)?,
            output_stalls: Snap::load(r)?,
        })
    }
}

/// A cluster switch component.
pub struct Switch {
    // lint:allow(snapshot-field-parity) construction-time wiring identity
    node: NodeId,
    // lint:allow(snapshot-field-parity) construction-time identity; load_state only names it in decode error messages
    name: String,
    // lint:allow(snapshot-field-parity) construction-time config; identical in the restore target by construction
    pipeline_cycles: u32,
    ports: Vec<Port>,
    // lint:allow(snapshot-field-parity) static routing table derived from the topology at build time
    route: BTreeMap<NodeId, usize>,
    /// Per-port chunk counters reused by the un-stitching admission check
    /// in [`Switch::try_route`]; always all-zero between calls. A scratch
    /// field (not a local) so the routing hot path allocates nothing.
    // lint:allow(snapshot-field-parity) per-tick scratch, all-zero between ticks (debug-asserted); nothing to restore
    unstitch_needed: Vec<u32>,
    /// Aggregate statistics.
    pub stats: SwitchStats,
}

impl Switch {
    /// Builds a switch at `node` with the given ports and routing table
    /// (destination node → port index).
    pub fn new(
        node: NodeId,
        name: impl Into<String>,
        pipeline_cycles: u32,
        specs: Vec<SwitchPortSpec>,
        route: BTreeMap<NodeId, usize>,
    ) -> Self {
        let mut ports = Vec::with_capacity(specs.len());
        for spec in specs {
            ports.push(Port {
                peer: spec.peer,
                peer_node: spec.peer_node,
                peer_port: spec.peer_port,
                wire_latency: spec.wire_latency,
                in_pipe: DelayQueue::new(),
                in_capacity: spec.input_capacity,
                stalled: None,
                egress: EgressPort::new(
                    EgressWire {
                        peer: spec.peer,
                        self_node: node,
                        peer_port: spec.peer_port,
                        wire_latency: spec.wire_latency,
                    },
                    spec.queue,
                    spec.output_capacity,
                    spec.flits_per_cycle,
                    spec.initial_credits,
                ),
                is_inter: spec.is_inter,
            });
        }
        for (&dst, &port) in &route {
            assert!(
                port < ports.len(),
                "route for {dst} names unknown port {port}"
            );
        }
        let unstitch_needed = vec![0; ports.len()];
        Self {
            node,
            name: name.into(),
            pipeline_cycles,
            ports,
            route,
            unstitch_needed,
            stats: SwitchStats::default(),
        }
    }

    /// This switch's node id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Per-port egress statistics: `(peer_node, is_inter, stats)`.
    pub fn port_stats(&self) -> impl Iterator<Item = (NodeId, bool, &crate::port::PortStats)> {
        self.ports
            .iter()
            .map(|p| (p.peer_node, p.is_inter, &p.egress.stats))
    }

    /// Turns on windowed time-series sampling on every egress port
    /// (`window` cycles per bucket). See [`PortSeries`].
    pub fn enable_sampling(&mut self, window: u64) {
        for port in &mut self.ports {
            port.egress.enable_sampling(window);
        }
    }

    /// Extracts the sampled per-link series: `(peer_node, is_inter,
    /// series)` for every port where sampling was enabled.
    pub fn take_series(&mut self) -> Vec<(NodeId, bool, PortSeries)> {
        self.ports
            .iter_mut()
            .filter_map(|p| {
                p.egress
                    .take_series()
                    .map(|series| (p.peer_node, p.is_inter, series))
            })
            .collect()
    }

    /// Dumps statistics under `prefix`: aggregate counters plus per-port
    /// egress counters, inter-cluster ports additionally aggregated under
    /// `<prefix>.inter`.
    pub fn report(&self, metrics: &mut Metrics, prefix: &str) {
        metrics.add(&format!("{prefix}.arrived"), self.stats.arrived);
        metrics.add(
            &format!("{prefix}.unstitched_flits"),
            self.stats.unstitched_flits,
        );
        metrics.add(
            &format!("{prefix}.unstitched_chunks"),
            self.stats.unstitched_chunks,
        );
        metrics.add(&format!("{prefix}.output_stalls"), self.stats.output_stalls);
        for port in &self.ports {
            let scope = format!("{prefix}.port{}", port.peer_node);
            port.egress.stats.report(metrics, &scope);
            port.egress.report_queue(metrics, &scope);
            if port.is_inter {
                port.egress
                    .stats
                    .report(metrics, &format!("{prefix}.inter"));
                port.egress
                    .report_queue(metrics, &format!("{prefix}.inter"));
            }
        }
    }

    fn out_port_for(&self, dst: NodeId) -> usize {
        *self
            .route
            .get(&dst)
            .unwrap_or_else(|| panic!("{}: no route to {dst}", self.name))
    }

    /// Attempts to route `flit` out of the switch. On success the flit is
    /// placed in the relevant output buffer(s) and `true` is returned; on
    /// back-pressure the flit is returned to the caller via `Err`.
    fn try_route(&mut self, flit: Flit, now: Cycle, tracer: &mut Tracer) -> Result<(), Flit> {
        if flit.dst == self.node {
            // A stitched flit addressed to this switch: un-stitch and
            // route every constituent to its own endpoint.
            debug_assert!(flit.is_stitched() || flit.chunks.len() == 1);
            debug_assert!(self.unstitch_needed.iter().all(|&n| n == 0));
            for i in 0..flit.chunks.len() {
                let port = self.out_port_for(flit.chunks[i].dst);
                self.unstitch_needed[port] += 1;
            }
            let fits = self
                .ports
                .iter()
                .zip(&self.unstitch_needed)
                .all(|(p, &n)| n == 0 || p.egress.free_space() >= n as usize);
            for n in &mut self.unstitch_needed {
                *n = 0;
            }
            if !fits {
                self.stats.output_stalls += 1;
                return Err(flit);
            }
            if flit.is_stitched() {
                self.stats.unstitched_flits += 1;
                tracer.instant(
                    EventClass::Stitch,
                    "stitch.unpack",
                    flit.chunks.first().map_or(0, |c| c.packet.0),
                    flit.chunks.len() as u64,
                );
            }
            let parts = flit.unstitch();
            self.stats.unstitched_chunks += parts.len() as u64;
            for part in parts {
                let port = self.out_port_for(part.dst);
                self.ports[port].egress.push(part, now);
            }
            Ok(())
        } else {
            let port = self.out_port_for(flit.dst);
            if self.ports[port].egress.can_accept() {
                self.ports[port].egress.push(flit, now);
                Ok(())
            } else {
                self.stats.output_stalls += 1;
                Err(flit)
            }
        }
    }
}

impl Component for Switch {
    fn tick(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.cycle();

        // 0. Replay skipped cycles on every egress rate limiter before any
        //    credit from the mailbox can change a port's balance — the
        //    replay assumes credits were constant while the switch slept.
        for port in &mut self.ports {
            port.egress.catch_up(now);
        }

        // 1. Accept arrivals and credits.
        while let Some(msg) = ctx.recv() {
            match msg {
                Message::Flit { flit, from, link } => {
                    let ix = link as usize;
                    assert!(
                        ix < self.ports.len(),
                        "{}: flit from {from} on unknown port {link}",
                        self.name
                    );
                    let port = &mut self.ports[ix];
                    debug_assert_eq!(
                        port.peer_node, from,
                        "{}: port {link} faces {}, flit claims {from}",
                        self.name, port.peer_node
                    );
                    assert!(
                        port.input_occupancy() < port.in_capacity,
                        "{}: input buffer overflow from {from} (credit protocol violated)",
                        self.name
                    );
                    self.stats.arrived += 1;
                    let tracer = ctx.tracer();
                    if tracer.wants(EventClass::Flit) {
                        let id = flit.chunks.first().map_or(0, |c| c.packet.0);
                        tracer.instant(EventClass::Flit, "flit.rx", id, flit.used_bytes() as u64);
                    }
                    port.in_pipe.push(now + self.pipeline_cycles as Cycle, flit);
                }
                Message::Credit { from, count, link } => {
                    let ix = link as usize;
                    assert!(
                        ix < self.ports.len(),
                        "{}: credit from {from} on unknown port {link}",
                        self.name
                    );
                    debug_assert_eq!(self.ports[ix].peer_node, from);
                    self.ports[ix].egress.on_credit(count);
                }
                other => panic!("{}: unexpected message {}", self.name, other.label()),
            }
        }

        // 2. Route flits whose pipeline delay elapsed.
        for ix in 0..self.ports.len() {
            // Retry a previously stalled flit first (ordering).
            if let Some(flit) = self.ports[ix].stalled.take() {
                match self.try_route(flit, now, ctx.tracer()) {
                    Ok(()) => {
                        let p = &self.ports[ix];
                        let (peer, link, delay) = (p.peer, p.peer_port, p.wire_latency);
                        ctx.send(
                            peer,
                            Message::Credit {
                                from: self.node,
                                count: 1,
                                link,
                            },
                            delay,
                        );
                    }
                    Err(flit) => {
                        self.ports[ix].stalled = Some(flit);
                        continue; // keep order: don't pop behind a stall
                    }
                }
            }
            while let Some(flit) = self.ports[ix].in_pipe.pop_ready(now) {
                match self.try_route(flit, now, ctx.tracer()) {
                    Ok(()) => {
                        let p = &self.ports[ix];
                        let (peer, link, delay) = (p.peer, p.peer_port, p.wire_latency);
                        ctx.send(
                            peer,
                            Message::Credit {
                                from: self.node,
                                count: 1,
                                link,
                            },
                            delay,
                        );
                    }
                    Err(flit) => {
                        self.ports[ix].stalled = Some(flit);
                        break;
                    }
                }
            }
        }

        // 3. Transmit from output buffers.
        for port in &mut self.ports {
            port.egress.tick(ctx);
        }
    }

    /// Burst dispatch: one tick over the whole mailbox slice, then a
    /// single fused pass over the ports computing busy-ness and the next
    /// wake together — the scalar path walks the port array twice more
    /// (once in [`Switch::busy`], once in [`Switch::next_wake`]), and on
    /// a radix-8+ switch under dense traffic those passes dominate the
    /// dispatch overhead.
    fn tick_burst(&mut self, ctx: &mut Ctx<'_>) -> BurstOutcome {
        self.tick(ctx);
        let now = ctx.cycle();
        let mut busy = false;
        let mut wake = Wake::OnMessage;
        for port in &self.ports {
            // A stalled flit is retried — and counted in output_stalls —
            // every cycle, so skipping any would change the statistics.
            if port.stalled.is_some() {
                return BurstOutcome {
                    busy: true,
                    wake: Wake::EveryCycle,
                };
            }
            busy |= !port.in_pipe.is_empty() || port.egress.busy();
            if wake != Wake::EveryCycle {
                if let Some(t) = port.in_pipe.next_ready() {
                    wake = wake.earliest(Wake::At(t));
                }
                wake = wake.earliest(port.egress.next_wake(now));
            }
            if busy && wake == Wake::EveryCycle {
                // Nothing later in the array can change either answer: a
                // stalled port would also yield (busy, EveryCycle).
                break;
            }
        }
        BurstOutcome { busy, wake }
    }

    fn busy(&self) -> bool {
        self.ports
            .iter()
            .any(|p| !p.in_pipe.is_empty() || p.stalled.is_some() || p.egress.busy())
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn next_wake(&self, now: Cycle) -> Wake {
        let mut wake = Wake::OnMessage;
        for port in &self.ports {
            // A stalled flit is retried — and counted in output_stalls —
            // every cycle, so skipping any would change the statistics.
            if port.stalled.is_some() {
                return Wake::EveryCycle;
            }
            if let Some(t) = port.in_pipe.next_ready() {
                wake = wake.earliest(Wake::At(t));
            }
            match port.egress.next_wake(now) {
                Wake::EveryCycle => return Wake::EveryCycle,
                w => wake = wake.earliest(w),
            }
        }
        wake
    }

    fn save_state(&self, w: &mut SnapshotWriter) {
        w.put_len(self.ports.len());
        for port in &self.ports {
            port.save_state(w);
        }
        self.stats.save(w);
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        let n = r.get_len()?;
        if n != self.ports.len() {
            return Err(SnapshotError::Corrupt(format!(
                "{}: snapshot has {n} ports, switch has {}",
                self.name,
                self.ports.len()
            )));
        }
        for port in &mut self.ports {
            port.load_state(r)?;
        }
        self.stats = Snap::load(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::port::FifoQueue;
    use crate::seg::Segmenter;
    use netcrafter_proto::{
        AccessId, GpuId, LineAddr, LineMask, MemReq, Packet, PacketId, PacketKind, PacketPayload,
        TrafficClass,
    };
    use netcrafter_sim::EngineBuilder;
    use std::sync::Arc;
    use std::sync::Mutex;

    /// Endpoint that sends a burst of flits into the switch at startup and
    /// records everything it receives.
    struct Endpoint {
        node: NodeId,
        switch: ComponentId,
        /// This endpoint's port index at the switch (stamped as `link`).
        switch_port: u16,
        outbound: Vec<Flit>,
        received: Arc<Mutex<Vec<Flit>>>,
        sent: bool,
        switch_credits: u32,
    }

    impl Component for Endpoint {
        fn tick(&mut self, ctx: &mut Ctx<'_>) {
            while let Some(msg) = ctx.recv() {
                match msg {
                    Message::Flit { flit, from, .. } => {
                        self.received.lock().unwrap().push(flit);
                        ctx.send(
                            self.switch,
                            Message::Credit {
                                from: self.node,
                                count: 1,
                                link: self.switch_port,
                            },
                            1,
                        );
                        let _ = from;
                    }
                    Message::Credit { count, .. } => self.switch_credits += count,
                    other => panic!("endpoint got {}", other.label()),
                }
            }
            if !self.sent {
                self.sent = true;
                for flit in self.outbound.drain(..) {
                    ctx.send(
                        self.switch,
                        Message::Flit {
                            flit,
                            from: self.node,
                            link: self.switch_port,
                        },
                        1,
                    );
                }
            }
        }
        fn busy(&self) -> bool {
            !self.sent
        }
        fn name(&self) -> &str {
            "endpoint"
        }
    }

    fn packet(id: u64, dst: NodeId) -> Packet {
        Packet {
            id: PacketId(id),
            kind: PacketKind::ReadReq,
            src: NodeId(0),
            dst,
            payload_bytes: 0,
            trim: None,
            inner: PacketPayload::Req(MemReq {
                access: AccessId(id),
                line: LineAddr(0),
                write: false,
                mask: LineMask::span(0, 8),
                sectors: 0b1111,
                class: TrafficClass::Data,
                requester: GpuId(0),
                owner: GpuId(1),
                origin: netcrafter_proto::message::Origin::Cu(0),
            }),
        }
    }

    fn spec(peer: ComponentId, peer_node: NodeId, peer_port: u16, rate: f64) -> SwitchPortSpec {
        SwitchPortSpec {
            peer,
            peer_node,
            peer_port,
            flits_per_cycle: rate,
            initial_credits: 1024,
            input_capacity: 1024,
            output_capacity: 1024,
            queue: Box::new(FifoQueue::new()),
            wire_latency: 1,
            is_inter: false,
        }
    }

    /// One switch, two endpoints; endpoint 0 sends a packet to endpoint 1.
    #[test]
    fn routes_between_endpoints_with_pipeline_latency() {
        let mut b = EngineBuilder::new();
        let e0 = b.reserve();
        let e1 = b.reserve();
        let sw = b.reserve();
        let received = Arc::new(Mutex::new(Vec::new()));

        let seg = Segmenter::new(16);
        let flits = seg.segment(packet(1, NodeId(1)));
        b.install(
            e0,
            Box::new(Endpoint {
                node: NodeId(0),
                switch: sw,
                switch_port: 0,
                outbound: flits,
                received: Arc::new(Mutex::new(Vec::new())),
                sent: false,
                switch_credits: 0,
            }),
        );
        b.install(
            e1,
            Box::new(Endpoint {
                node: NodeId(1),
                switch: sw,
                switch_port: 1,
                outbound: vec![],
                received: Arc::clone(&received),
                sent: false,
                switch_credits: 0,
            }),
        );
        let route = BTreeMap::from([(NodeId(0), 0), (NodeId(1), 1)]);
        b.install(
            sw,
            Box::new(Switch::new(
                NodeId(2),
                "sw",
                30,
                vec![spec(e0, NodeId(0), 0, 8.0), spec(e1, NodeId(1), 0, 8.0)],
                route,
            )),
        );
        let mut e = b.build();
        let end = e.run_to_quiescence(500);
        assert_eq!(received.lock().unwrap().len(), 1);
        // Path: send (1) + pipeline (30) + wire (1) and change.
        assert!(
            end >= 32,
            "must include the 30-cycle switch pipeline, got {end}"
        );
    }

    /// Two switches in series (inter-cluster link), endpoint to endpoint.
    #[test]
    fn two_hop_route_crosses_both_switches() {
        let mut b = EngineBuilder::new();
        let e0 = b.reserve();
        let e1 = b.reserve();
        let sw0 = b.reserve();
        let sw1 = b.reserve();
        let received = Arc::new(Mutex::new(Vec::new()));

        let seg = Segmenter::new(16);
        let mut outbound = Vec::new();
        for id in 0..4 {
            outbound.extend(seg.segment(packet(id, NodeId(1))));
        }
        let n_flits = outbound.len();
        b.install(
            e0,
            Box::new(Endpoint {
                node: NodeId(0),
                switch: sw0,
                switch_port: 0,
                outbound,
                received: Arc::new(Mutex::new(Vec::new())),
                sent: false,
                switch_credits: 0,
            }),
        );
        b.install(
            e1,
            Box::new(Endpoint {
                node: NodeId(1),
                switch: sw1,
                switch_port: 1,
                outbound: vec![],
                received: Arc::clone(&received),
                sent: false,
                switch_credits: 0,
            }),
        );
        // sw0 (node 2): port0 -> e0, port1 -> sw1 (inter, 1 flit/cycle).
        b.install(
            sw0,
            Box::new(Switch::new(
                NodeId(2),
                "sw0",
                30,
                vec![spec(e0, NodeId(0), 0, 8.0), spec(sw1, NodeId(3), 0, 1.0)],
                BTreeMap::from([(NodeId(0), 0), (NodeId(1), 1), (NodeId(3), 1)]),
            )),
        );
        // sw1 (node 3): port0 -> sw0, port1 -> e1.
        b.install(
            sw1,
            Box::new(Switch::new(
                NodeId(3),
                "sw1",
                30,
                vec![spec(sw0, NodeId(2), 1, 1.0), spec(e1, NodeId(1), 0, 8.0)],
                BTreeMap::from([(NodeId(0), 0), (NodeId(2), 0), (NodeId(1), 1)]),
            )),
        );
        let mut e = b.build();
        let end = e.run_to_quiescence(1000);
        assert_eq!(received.lock().unwrap().len(), n_flits);
        assert!(end > 60, "two switch pipelines, got {end}");
    }

    /// A slow egress with tiny downstream credit stalls routing and the
    /// back-pressure keeps input occupancy bounded (no overflow panic).
    #[test]
    fn backpressure_with_small_buffers() {
        let mut b = EngineBuilder::new();
        let e0 = b.reserve();
        let e1 = b.reserve();
        let sw0 = b.reserve();
        let sw1 = b.reserve();
        let received = Arc::new(Mutex::new(Vec::new()));

        let seg = Segmenter::new(16);
        let mut outbound = Vec::new();
        for id in 0..20 {
            outbound.extend(seg.segment(packet(id, NodeId(1))));
        }
        let n = outbound.len();
        b.install(
            e0,
            Box::new(Endpoint {
                node: NodeId(0),
                switch: sw0,
                switch_port: 0,
                outbound,
                received: Arc::new(Mutex::new(Vec::new())),
                sent: false,
                switch_credits: 0,
            }),
        );
        b.install(
            e1,
            Box::new(Endpoint {
                node: NodeId(1),
                switch: sw1,
                switch_port: 1,
                outbound: vec![],
                received: Arc::clone(&received),
                sent: false,
                switch_credits: 0,
            }),
        );
        // Tight buffers: output 4, input 4, credits 4, slow inter link.
        let tight = |peer, peer_node, peer_port, rate| SwitchPortSpec {
            peer,
            peer_node,
            peer_port,
            flits_per_cycle: rate,
            initial_credits: 4,
            input_capacity: 4,
            output_capacity: 4,
            queue: Box::new(FifoQueue::new()),
            wire_latency: 1,
            is_inter: false,
        };
        b.install(
            sw0,
            Box::new(Switch::new(
                NodeId(2),
                "sw0",
                5,
                vec![spec(e0, NodeId(0), 0, 8.0), tight(sw1, NodeId(3), 0, 0.25)],
                BTreeMap::from([(NodeId(0), 0), (NodeId(1), 1), (NodeId(3), 1)]),
            )),
        );
        b.install(
            sw1,
            Box::new(Switch::new(
                NodeId(3),
                "sw1",
                5,
                vec![tight(sw0, NodeId(2), 1, 0.25), spec(e1, NodeId(1), 0, 8.0)],
                BTreeMap::from([(NodeId(0), 0), (NodeId(2), 0), (NodeId(1), 1)]),
            )),
        );
        // Endpoint e0 has 1024 credits toward sw0 but sw0 input cap is
        // 1024 by spec() for its port; the bottleneck is the 0.25
        // flits/cycle inter link with 4-credit windows.
        let mut e = b.build();
        e.run_to_quiescence(5000);
        assert_eq!(received.lock().unwrap().len(), n);
    }

    /// Stitched flit addressed to the switch gets un-stitched and each
    /// chunk routed to its own endpoint.
    #[test]
    fn unstitches_and_fans_out() {
        let mut b = EngineBuilder::new();
        let e0 = b.reserve();
        let e1 = b.reserve();
        let e2 = b.reserve();
        let sw = b.reserve();
        let r1 = Arc::new(Mutex::new(Vec::new()));
        let r2 = Arc::new(Mutex::new(Vec::new()));

        let seg = Segmenter::new(16);
        let mut parent = seg.segment(packet(1, NodeId(1))).remove(0);
        let mut p2 = packet(2, NodeId(2));
        p2.kind = PacketKind::WriteRsp; // 4 bytes, fits in the 4 empty bytes
        let cand = seg.segment(p2).remove(0);
        parent.stitch(cand);
        parent.dst = NodeId(3); // addressed to the switch
        b.install(
            e0,
            Box::new(Endpoint {
                node: NodeId(0),
                switch: sw,
                switch_port: 0,
                outbound: vec![parent],
                received: Arc::new(Mutex::new(Vec::new())),
                sent: false,
                switch_credits: 0,
            }),
        );
        for (id, node, port, rx) in [(e1, NodeId(1), 1, &r1), (e2, NodeId(2), 2, &r2)] {
            b.install(
                id,
                Box::new(Endpoint {
                    node,
                    switch: sw,
                    switch_port: port,
                    outbound: vec![],
                    received: Arc::clone(rx),
                    sent: false,
                    switch_credits: 0,
                }),
            );
        }
        let mut sw_comp = Switch::new(
            NodeId(3),
            "sw",
            10,
            vec![
                spec(e0, NodeId(0), 0, 8.0),
                spec(e1, NodeId(1), 0, 8.0),
                spec(e2, NodeId(2), 0, 8.0),
            ],
            BTreeMap::from([(NodeId(0), 0), (NodeId(1), 1), (NodeId(2), 2)]),
        );
        sw_comp.stats = SwitchStats::default();
        b.install(sw, Box::new(sw_comp));
        let mut e = b.build();
        e.run_to_quiescence(200);
        assert_eq!(r1.lock().unwrap().len(), 1, "chunk for node1 delivered");
        assert_eq!(r2.lock().unwrap().len(), 1, "chunk for node2 delivered");
        assert!(!r1.lock().unwrap()[0].is_stitched());
        assert!(!r2.lock().unwrap()[0].is_stitched());
        assert_eq!(r1.lock().unwrap()[0].chunks[0].packet, PacketId(1));
        assert_eq!(r2.lock().unwrap()[0].chunks[0].packet, PacketId(2));
    }
}
