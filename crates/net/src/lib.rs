//! Interconnect model for the hierarchical multi-GPU node.
//!
//! This crate implements the Akita-style network the paper simulates on
//! (§5.1): packets are segmented into fixed-size flits, switches process
//! flits through a 30-cycle pipeline at 1 flit/cycle/port, flits wait in
//! bounded I/O buffers (1024 entries) whose exhaustion causes back-pressure
//! that propagates upstream via credits, and links move
//! `bandwidth / flit-size` flits per cycle — 8 flits/cycle on the 128 GB/s
//! intra-cluster links, 1 flit/cycle on the 16 GB/s inter-cluster links.
//!
//! The topology is the Frontier-node shape of Figure 2: each cluster has a
//! switch connecting its GPUs; cluster switches are fully meshed over the
//! lower-bandwidth inter-cluster links. The [`port::EgressQueue`] trait is
//! the seam where NetCrafter plugs in: a cluster switch's inter-cluster
//! egress queue can be replaced by the Cluster Queue of `netcrafter-core`,
//! which performs Stitching, Pooling and Sequencing at pop time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod port;
pub mod seg;
pub mod switch;
pub mod synthetic;
pub mod topology;

pub use port::{EgressPort, EgressQueue, EgressWire, FifoQueue, PortSeries, PortStats};
pub use seg::{Reassembler, Segmenter};
pub use switch::{Switch, SwitchPortSpec};
pub use synthetic::{load_latency_sweep, LoadPoint, SyntheticConfig};
pub use topology::{Topology, WIRE_LATENCY};
