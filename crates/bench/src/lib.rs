//! Benchmark harness: regenerates every table and figure of the
//! NetCrafter paper's evaluation (§5) from the simulator.
//!
//! * [`Runner`] — memoizing experiment executor (most figures share the
//!   per-workload baseline runs, so results are cached by configuration).
//! * [`Table`] — plain-text/markdown table renderer.
//! * [`figures`] — one generator per paper artifact (`table1`, `fig3` …
//!   `fig22`, `table3`), each returning a [`Table`] whose rows match the
//!   series the paper plots.
//!
//! The `figures` binary drives this library from the command line:
//!
//! ```text
//! cargo run -p netcrafter-bench --release --bin figures -- all
//! cargo run -p netcrafter-bench --release --bin figures -- fig14 fig18
//! cargo run -p netcrafter-bench --release --bin figures -- --quick fig3
//! cargo run -p netcrafter-bench --release --bin figures -- all --jobs 4 --cache-dir .figure-cache
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod figures;
pub mod microbench;
pub mod traceio;

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use netcrafter_multigpu::{CheckpointPlan, JobSpec, RunResult, SystemVariant};
use netcrafter_proto::SystemConfig;
use netcrafter_workloads::{Scale, Workload};

pub use cache::{CheckpointStore, DiskCache};
pub use traceio::TraceArgs;

/// Geometric mean of strictly positive values (0.0 for an empty slice).
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Arithmetic mean (0.0 for an empty slice).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// A renderable result table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table caption, e.g. `"Figure 14: overall speedup"`.
    pub title: String,
    /// Column headers; the first column is the row label.
    pub header: Vec<String>,
    /// Row cells (first cell is the label).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, header: Vec<&str>) -> Self {
        Self {
            title: title.into(),
            header: header.into_iter().map(str::to_owned).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }
}

/// Formats a ratio/speedup.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "### {}\n", self.title)?;
        let render = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (i, cell) in cells.iter().enumerate() {
                write!(f, " {cell:>w$} |", w = widths[i])?;
            }
            writeln!(f)
        };
        render(f, &self.header)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{:-<w$}|", "", w = w + 2)?;
        }
        writeln!(f)?;
        for row in &self.rows {
            render(f, row)?;
        }
        Ok(())
    }
}

/// Where a job's result came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobSource {
    /// Simulated in this process.
    Fresh,
    /// Replayed from the persistent on-disk cache.
    DiskHit,
}

/// Wall-clock/throughput record for one resolved job (memo replays are
/// free and not recorded).
#[derive(Debug, Clone)]
pub struct JobStat {
    /// The job's memo key (`workload|variant|tag`).
    pub memo_key: String,
    /// Fresh simulation or disk-cache replay.
    pub source: JobSource,
    /// Time to resolve the job.
    pub wall: Duration,
    /// Simulated cycles of the resolved result.
    pub exec_cycles: u64,
    /// Cycle the simulation started stepping from: 0 for a cold run,
    /// the checkpoint's cycle after a warm start.
    pub resumed_at: u64,
}

impl JobStat {
    /// Simulation throughput in cycles per wall-clock second (0.0 for an
    /// instantaneous replay).
    pub fn cycles_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.exec_cycles as f64 / secs
        }
    }
}

/// Renders job stats as a human-readable report: one line per resolved
/// job plus a totals line (fresh vs disk-replayed, aggregate throughput).
pub fn stats_report(stats: &[JobStat]) -> String {
    let mut out = String::new();
    let mut fresh = 0usize;
    let mut replayed = 0usize;
    let mut total_wall = Duration::ZERO;
    let mut total_cycles = 0u64;
    for s in stats {
        let src = match s.source {
            JobSource::Fresh => "sim",
            JobSource::DiskHit => "disk",
        };
        let warm = if s.resumed_at > 0 {
            format!("  warm-start from cycle {}", s.resumed_at)
        } else {
            String::new()
        };
        out.push_str(&format!(
            "  {:<40} {src:>4}  {:>9.1?}  {:>12} cyc  {:>7.1} Mcyc/s{warm}\n",
            s.memo_key,
            s.wall,
            s.exec_cycles,
            s.cycles_per_sec() / 1e6,
        ));
        match s.source {
            JobSource::Fresh => {
                fresh += 1;
                total_wall += s.wall;
                total_cycles += s.exec_cycles;
            }
            JobSource::DiskHit => replayed += 1,
        }
    }
    let rate = if total_wall.is_zero() {
        0.0
    } else {
        total_cycles as f64 / total_wall.as_secs_f64() / 1e6
    };
    out.push_str(&format!(
        "  {fresh} simulated ({total_cycles} cycles in {total_wall:.1?} cpu-time, \
         {rate:.1} Mcyc/s), {replayed} replayed from disk\n",
    ));
    out
}

/// Memoizing experiment executor shared by all figure generators.
///
/// Results are resolved through three layers:
///
/// 1. an in-process memo (thread-safe; keyed by `workload|variant|tag`),
/// 2. an optional persistent [`DiskCache`] keyed by the *physical* job
///    identity ([`JobSpec::cache_key`]), so re-running `figures` only
///    simulates configurations it has never seen,
/// 3. a fresh simulation.
///
/// [`Runner::sweep`] resolves a batch of jobs on `jobs` worker threads.
/// Because every simulation is deterministic in its spec and results are
/// retrieved from the memo by key, figure output is bit-identical no
/// matter how many workers ran the sweep (or whether results came from
/// disk).
pub struct Runner {
    /// Base system configuration (before variant application).
    pub base_cfg: SystemConfig,
    /// Workload scale.
    pub scale: Scale,
    /// Workload seed.
    pub seed: u64,
    /// Watchdog limit per simulation.
    pub max_cycles: u64,
    /// Print one progress line per fresh run to stderr.
    pub verbose: bool,
    /// Worker threads used by [`Runner::sweep`].
    pub jobs: usize,
    /// Worker threads *inside* each simulation (the engine's conservative
    /// parallel scheduler); 1 runs sequentially. Orthogonal to `jobs`,
    /// which parallelizes across simulations. Excluded from cache keys:
    /// results are bit-identical at any thread count.
    pub threads: usize,
    memo: Mutex<HashMap<String, Arc<RunResult>>>,
    disk: Option<DiskCache>,
    ckpt: Option<CheckpointStore>,
    checkpoint_at: Option<u64>,
    stats: Mutex<Vec<JobStat>>,
}

impl Runner {
    /// Full experiment configuration: 4 GPUs × 8 CUs, paper-scale
    /// workloads. A complete `figures all` pass takes minutes.
    pub fn paper() -> Self {
        Self::with_base(SystemConfig::small(8), Scale::paper())
    }

    /// Scaled-down configuration for smoke tests and the bench suites:
    /// 2 CUs per GPU, tiny workloads.
    pub fn quick() -> Self {
        Self::with_base(SystemConfig::small(2), Scale::tiny())
    }

    /// A runner over an arbitrary configuration and scale.
    pub fn with_base(base_cfg: SystemConfig, scale: Scale) -> Self {
        Self {
            base_cfg,
            scale,
            seed: 0xC0FFEE,
            max_cycles: 300_000_000,
            verbose: false,
            jobs: 1,
            threads: 1,
            memo: Mutex::new(HashMap::new()),
            disk: None,
            ckpt: None,
            checkpoint_at: None,
            stats: Mutex::new(Vec::new()),
        }
    }

    /// Sets the worker-thread count for [`Runner::sweep`] (0 is treated
    /// as 1).
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Sets the per-simulation worker-thread count (0 is treated as 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Attaches a persistent result cache rooted at `dir`.
    pub fn with_cache_dir(mut self, dir: impl Into<std::path::PathBuf>) -> std::io::Result<Self> {
        self.disk = Some(DiskCache::open(dir)?);
        Ok(self)
    }

    /// The attached disk cache, if any.
    pub fn disk_cache(&self) -> Option<&DiskCache> {
        self.disk.as_ref()
    }

    /// Attaches a snapshot store rooted at `dir`: fresh simulations
    /// warm-start from the longest cached prefix checkpoint of their
    /// physical cache key, and checkpoints requested via
    /// [`Runner::with_checkpoint_at`] are persisted there.
    pub fn with_checkpoint_dir(
        mut self,
        dir: impl Into<std::path::PathBuf>,
    ) -> std::io::Result<Self> {
        self.ckpt = Some(CheckpointStore::open(dir)?);
        Ok(self)
    }

    /// Requests a snapshot at `cycle` from every fresh simulation; stored
    /// in the checkpoint dir when one is attached.
    pub fn with_checkpoint_at(mut self, cycle: u64) -> Self {
        self.checkpoint_at = Some(cycle);
        self
    }

    /// The attached checkpoint store, if any.
    pub fn checkpoint_store(&self) -> Option<&CheckpointStore> {
        self.ckpt.as_ref()
    }

    /// The job spec for `workload` × `variant` on the base config.
    pub fn job(&self, workload: Workload, variant: SystemVariant) -> JobSpec {
        self.job_with(workload, variant, self.base_cfg, "")
    }

    /// The job spec for an alternate base configuration; `tag` must
    /// uniquely name the alteration for the memo cache.
    pub fn job_with(
        &self,
        workload: Workload,
        variant: SystemVariant,
        base_cfg: SystemConfig,
        tag: &str,
    ) -> JobSpec {
        JobSpec {
            workload,
            variant,
            base_cfg,
            scale: self.scale,
            seed: self.seed,
            max_cycles: self.max_cycles,
            threads: self.threads,
            tag: tag.to_owned(),
        }
    }

    /// Runs (or replays) `workload` under `variant` on the base config.
    pub fn run(&self, workload: Workload, variant: SystemVariant) -> Arc<RunResult> {
        self.run_job(&self.job(workload, variant))
    }

    /// Runs with an alternate base configuration; `tag` must uniquely
    /// name the alteration for the memo cache.
    pub fn run_with(
        &self,
        workload: Workload,
        variant: SystemVariant,
        base_cfg: SystemConfig,
        tag: &str,
    ) -> Arc<RunResult> {
        self.run_job(&self.job_with(workload, variant, base_cfg, tag))
    }

    /// Resolves one job through memo → disk → simulation.
    pub fn run_job(&self, job: &JobSpec) -> Arc<RunResult> {
        let memo_key = job.memo_key();
        if let Some(hit) = self.memo.lock().unwrap().get(&memo_key) {
            return Arc::clone(hit);
        }
        let t0 = Instant::now();
        if let Some(disk) = &self.disk {
            if let Some(result) = disk.load(&job.cache_key()) {
                let result = Arc::new(result);
                self.finish(memo_key, JobSource::DiskHit, t0.elapsed(), &result);
                return result;
            }
        }
        if self.verbose {
            eprintln!("  running {memo_key} …");
        }
        let mut plan = CheckpointPlan {
            checkpoint_at: self.checkpoint_at,
            restore_from: None,
        };
        if let Some(store) = &self.ckpt {
            if let Some((_, bytes)) = store.load_longest_prefix(&job.cache_key()) {
                plan.restore_from = Some(bytes);
            }
        }
        let exp = job.to_experiment();
        let run = match exp.run_checkpointed(&plan) {
            Ok(run) => run,
            Err(e) => {
                // A stale checkpoint (older snapshot version, changed
                // component roster) is a cache miss, not a fatal error.
                eprintln!("warning: unusable checkpoint for {memo_key} ({e}); simulating cold");
                plan.restore_from = None;
                exp.run_checkpointed(&plan)
                    .expect("cold run restores nothing")
            }
        };
        if run.resumed_at > 0 {
            eprintln!(
                "  warm-start {memo_key}: simulated from cycle {} instead of 0",
                run.resumed_at
            );
        }
        if let Some(store) = &self.ckpt {
            if let Some((cycle, bytes)) = &run.snapshot {
                if let Err(e) = store.store(&job.cache_key(), *cycle, bytes) {
                    eprintln!("warning: cannot persist checkpoint for {memo_key}: {e}");
                }
            }
        }
        let result = run.result;
        let wall = t0.elapsed();
        if let Some(disk) = &self.disk {
            if let Err(e) = disk.store(&job.cache_key(), &result) {
                eprintln!("warning: cannot persist {memo_key}: {e}");
            }
        }
        let result = Arc::new(result);
        self.finish_at(memo_key, JobSource::Fresh, wall, &result, run.resumed_at);
        result
    }

    fn finish(&self, memo_key: String, source: JobSource, wall: Duration, result: &Arc<RunResult>) {
        self.finish_at(memo_key, source, wall, result, 0);
    }

    fn finish_at(
        &self,
        memo_key: String,
        source: JobSource,
        wall: Duration,
        result: &Arc<RunResult>,
        resumed_at: u64,
    ) {
        self.stats.lock().unwrap().push(JobStat {
            memo_key: memo_key.clone(),
            source,
            wall,
            exec_cycles: result.exec_cycles,
            resumed_at,
        });
        self.memo
            .lock()
            .unwrap()
            .insert(memo_key, Arc::clone(result));
    }

    /// Resolves a batch of jobs, fanning unresolved work out across
    /// [`Runner::jobs`] worker threads, and returns the results in input
    /// order. Duplicate specs (same memo key) are simulated once.
    pub fn sweep(&self, jobs: &[JobSpec]) -> Vec<Arc<RunResult>> {
        let mut pending: Vec<&JobSpec> = Vec::new();
        {
            let memo = self.memo.lock().unwrap();
            let mut queued = HashSet::new();
            for job in jobs {
                let key = job.memo_key();
                if !memo.contains_key(&key) && queued.insert(key) {
                    pending.push(job);
                }
            }
        }
        let workers = self.jobs.max(1).min(pending.len());
        if workers <= 1 {
            for job in &pending {
                self.run_job(job);
            }
        } else {
            let next = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(job) = pending.get(i) else { break };
                        self.run_job(job);
                    });
                }
            });
        }
        let memo = self.memo.lock().unwrap();
        jobs.iter()
            .map(|job| Arc::clone(&memo[&job.memo_key()]))
            .collect()
    }

    /// Number of completed (cached) runs.
    pub fn runs_completed(&self) -> usize {
        self.memo.lock().unwrap().len()
    }

    /// Per-job stats for every job resolved so far (simulated or replayed
    /// from disk), in completion order.
    pub fn job_stats(&self) -> Vec<JobStat> {
        self.stats.lock().unwrap().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_and_mean() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-9);
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-9);
        assert_eq!(geomean(&[]), 0.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn table_renders_markdown() {
        let mut t = Table::new("Demo", vec!["Workload", "Speedup"]);
        t.row(vec!["GUPS".into(), f2(1.5)]);
        let s = t.to_string();
        assert!(s.contains("### Demo"));
        assert!(s.contains("GUPS |"), "cells are right-aligned: {s}");
        assert!(s.contains("1.50"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new("Demo", vec!["A", "B"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn runner_memoizes() {
        let r = Runner::quick();
        let a = r.run(Workload::Gups, SystemVariant::Baseline);
        let b = r.run(Workload::Gups, SystemVariant::Baseline);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(r.runs_completed(), 1);
        // Only the fresh run is recorded; the memo replay is free.
        let stats = r.job_stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].source, JobSource::Fresh);
        assert_eq!(stats[0].exec_cycles, a.exec_cycles);
    }

    #[test]
    fn sweep_returns_input_order_and_dedups() {
        let r = Runner::quick().with_jobs(2);
        let jobs = vec![
            r.job(Workload::Gups, SystemVariant::Baseline),
            r.job(Workload::Gups, SystemVariant::Ideal),
            r.job(Workload::Gups, SystemVariant::Baseline), // duplicate
        ];
        let results = r.sweep(&jobs);
        assert_eq!(results.len(), 3);
        assert!(Arc::ptr_eq(&results[0], &results[2]));
        assert!(!Arc::ptr_eq(&results[0], &results[1]));
        assert_eq!(r.runs_completed(), 2, "duplicate simulated once");
        // A second sweep is fully memoized.
        let again = r.sweep(&jobs);
        assert!(Arc::ptr_eq(&results[0], &again[0]));
        assert_eq!(r.job_stats().len(), 2);
    }

    #[test]
    fn stats_report_summarizes() {
        let stats = vec![
            JobStat {
                memo_key: "GUPS|Baseline|".into(),
                source: JobSource::Fresh,
                wall: std::time::Duration::from_millis(10),
                exec_cycles: 1_000_000,
                resumed_at: 0,
            },
            JobStat {
                memo_key: "GUPS|Ideal|".into(),
                source: JobSource::DiskHit,
                wall: std::time::Duration::from_micros(50),
                exec_cycles: 900_000,
                resumed_at: 250_000,
            },
        ];
        let report = stats_report(&stats);
        assert!(report.contains("GUPS|Baseline|"));
        assert!(report.contains("1 simulated"));
        assert!(report.contains("1 replayed from disk"));
        assert!(report.contains("warm-start from cycle 250000"));
        assert!((stats[0].cycles_per_sec() - 1e8).abs() < 1e3);
    }
}
