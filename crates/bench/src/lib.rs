//! Benchmark harness: regenerates every table and figure of the
//! NetCrafter paper's evaluation (§5) from the simulator.
//!
//! * [`Runner`] — memoizing experiment executor (most figures share the
//!   per-workload baseline runs, so results are cached by configuration).
//! * [`Table`] — plain-text/markdown table renderer.
//! * [`figures`] — one generator per paper artifact (`table1`, `fig3` …
//!   `fig22`, `table3`), each returning a [`Table`] whose rows match the
//!   series the paper plots.
//!
//! The `figures` binary drives this library from the command line:
//!
//! ```text
//! cargo run -p netcrafter-bench --release --bin figures -- all
//! cargo run -p netcrafter-bench --release --bin figures -- fig14 fig18
//! cargo run -p netcrafter-bench --release --bin figures -- --quick fig3
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

use netcrafter_multigpu::{Experiment, RunResult, SystemVariant};
use netcrafter_proto::SystemConfig;
use netcrafter_workloads::{Scale, Workload};

/// Geometric mean of strictly positive values (0.0 for an empty slice).
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Arithmetic mean (0.0 for an empty slice).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// A renderable result table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table caption, e.g. `"Figure 14: overall speedup"`.
    pub title: String,
    /// Column headers; the first column is the row label.
    pub header: Vec<String>,
    /// Row cells (first cell is the label).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, header: Vec<&str>) -> Self {
        Self {
            title: title.into(),
            header: header.into_iter().map(str::to_owned).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }
}

/// Formats a ratio/speedup.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "### {}\n", self.title)?;
        let render = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (i, cell) in cells.iter().enumerate() {
                write!(f, " {cell:>w$} |", w = widths[i])?;
            }
            writeln!(f)
        };
        render(f, &self.header)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{:-<w$}|", "", w = w + 2)?;
        }
        writeln!(f)?;
        for row in &self.rows {
            render(f, row)?;
        }
        Ok(())
    }
}

/// Memoizing experiment executor shared by all figure generators.
pub struct Runner {
    /// Base system configuration (before variant application).
    pub base_cfg: SystemConfig,
    /// Workload scale.
    pub scale: Scale,
    /// Workload seed.
    pub seed: u64,
    /// Print one progress line per fresh run to stderr.
    pub verbose: bool,
    cache: RefCell<HashMap<String, Rc<RunResult>>>,
}

impl Runner {
    /// Full experiment configuration: 4 GPUs × 8 CUs, paper-scale
    /// workloads. A complete `figures all` pass takes minutes.
    pub fn paper() -> Self {
        Self {
            base_cfg: SystemConfig::small(8),
            scale: Scale::paper(),
            seed: 0xC0FFEE,
            verbose: false,
            cache: RefCell::new(HashMap::new()),
        }
    }

    /// Scaled-down configuration for smoke tests and criterion benches:
    /// 2 CUs per GPU, tiny workloads.
    pub fn quick() -> Self {
        Self {
            base_cfg: SystemConfig::small(2),
            scale: Scale::tiny(),
            seed: 0xC0FFEE,
            verbose: false,
            cache: RefCell::new(HashMap::new()),
        }
    }

    /// Runs (or replays) `workload` under `variant` on the base config.
    pub fn run(&self, workload: Workload, variant: SystemVariant) -> Rc<RunResult> {
        self.run_with(workload, variant, self.base_cfg, "")
    }

    /// Runs with an alternate base configuration; `tag` must uniquely
    /// name the alteration for the memo cache.
    pub fn run_with(
        &self,
        workload: Workload,
        variant: SystemVariant,
        base_cfg: SystemConfig,
        tag: &str,
    ) -> Rc<RunResult> {
        let key = format!("{workload}|{}|{tag}", variant.label());
        if let Some(hit) = self.cache.borrow().get(&key) {
            return Rc::clone(hit);
        }
        if self.verbose {
            eprintln!("  running {key} …");
        }
        let result = Rc::new(
            Experiment {
                workload,
                variant,
                base_cfg,
                scale: self.scale,
                seed: self.seed,
                max_cycles: 300_000_000,
            }
            .run(),
        );
        self.cache.borrow_mut().insert(key, Rc::clone(&result));
        result
    }

    /// Number of completed (cached) runs.
    pub fn runs_completed(&self) -> usize {
        self.cache.borrow().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_and_mean() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-9);
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-9);
        assert_eq!(geomean(&[]), 0.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn table_renders_markdown() {
        let mut t = Table::new("Demo", vec!["Workload", "Speedup"]);
        t.row(vec!["GUPS".into(), f2(1.5)]);
        let s = t.to_string();
        assert!(s.contains("### Demo"));
        assert!(s.contains("GUPS |"), "cells are right-aligned: {s}");
        assert!(s.contains("1.50"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new("Demo", vec!["A", "B"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn runner_memoizes() {
        let r = Runner::quick();
        let a = r.run(Workload::Gups, SystemVariant::Baseline);
        let b = r.run(Workload::Gups, SystemVariant::Baseline);
        assert!(Rc::ptr_eq(&a, &b));
        assert_eq!(r.runs_completed(), 1);
    }
}
