//! Benchmark harness: regenerates every table and figure of the
//! NetCrafter paper's evaluation (§5) from the simulator.
//!
//! * [`Runner`] — memoizing experiment executor (most figures share the
//!   per-workload baseline runs, so results are cached by configuration).
//! * [`Table`] — plain-text/markdown table renderer.
//! * [`figures`] — one generator per paper artifact (`table1`, `fig3` …
//!   `fig22`, `table3`), each returning a [`Table`] whose rows match the
//!   series the paper plots.
//!
//! The `figures` binary drives this library from the command line:
//!
//! ```text
//! cargo run -p netcrafter-bench --release --bin figures -- all
//! cargo run -p netcrafter-bench --release --bin figures -- fig14 fig18
//! cargo run -p netcrafter-bench --release --bin figures -- --quick fig3
//! cargo run -p netcrafter-bench --release --bin figures -- all --jobs 4 --cache-dir .figure-cache
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod figures;
pub mod microbench;
pub mod traceio;

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use netcrafter_multigpu::{CheckpointPlan, JobSpec, RunResult, SystemVariant};
use netcrafter_proto::SystemConfig;
use netcrafter_sim::ForkSnapshot;
use netcrafter_workloads::{Scale, Workload};

pub use cache::{CheckpointStore, DiskCache};
pub use traceio::TraceArgs;

/// Geometric mean of strictly positive values (0.0 for an empty slice).
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Arithmetic mean (0.0 for an empty slice).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// A renderable result table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table caption, e.g. `"Figure 14: overall speedup"`.
    pub title: String,
    /// Column headers; the first column is the row label.
    pub header: Vec<String>,
    /// Row cells (first cell is the label).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, header: Vec<&str>) -> Self {
        Self {
            title: title.into(),
            header: header.into_iter().map(str::to_owned).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }
}

/// Formats a ratio/speedup.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "### {}\n", self.title)?;
        let render = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (i, cell) in cells.iter().enumerate() {
                write!(f, " {cell:>w$} |", w = widths[i])?;
            }
            writeln!(f)
        };
        render(f, &self.header)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{:-<w$}|", "", w = w + 2)?;
        }
        writeln!(f)?;
        for row in &self.rows {
            render(f, row)?;
        }
        Ok(())
    }
}

/// Where a job's result came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobSource {
    /// Simulated in this process from cycle 0 (possibly warm-started
    /// from a persistent checkpoint).
    Fresh,
    /// Simulated in this process from an in-memory prefix fork shared
    /// with other jobs of the same sweep.
    Forked,
    /// Replayed from the persistent on-disk cache.
    DiskHit,
    /// Aliased to another job of the same sweep batch with an identical
    /// physical identity ([`JobSpec::cache_key`]); no execution at all.
    Shared,
}

/// Wall-clock/throughput record for one resolved job (memo replays are
/// free and not recorded).
#[derive(Debug, Clone)]
pub struct JobStat {
    /// The job's memo key (`workload|variant|tag`).
    pub memo_key: String,
    /// Fresh simulation or disk-cache replay.
    pub source: JobSource,
    /// Time to resolve the job.
    pub wall: Duration,
    /// Simulated cycles of the resolved result.
    pub exec_cycles: u64,
    /// Cycle the simulation started stepping from: 0 for a cold run,
    /// the checkpoint's cycle after a warm start.
    pub resumed_at: u64,
}

impl JobStat {
    /// Simulation throughput in cycles per wall-clock second (0.0 for an
    /// instantaneous replay).
    pub fn cycles_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.exec_cycles as f64 / secs
        }
    }
}

/// Renders job stats as a human-readable report: one line per resolved
/// job plus a totals line (fresh vs disk-replayed, aggregate throughput).
pub fn stats_report(stats: &[JobStat]) -> String {
    let mut out = String::new();
    let mut fresh = 0usize;
    let mut forked = 0usize;
    let mut replayed = 0usize;
    let mut shared = 0usize;
    let mut total_wall = Duration::ZERO;
    let mut total_cycles = 0u64;
    for s in stats {
        let src = match s.source {
            JobSource::Fresh => "sim",
            JobSource::Forked => "fork",
            JobSource::DiskHit => "disk",
            JobSource::Shared => "dup",
        };
        let warm = if s.resumed_at > 0 {
            format!("  warm-start from cycle {}", s.resumed_at)
        } else {
            String::new()
        };
        out.push_str(&format!(
            "  {:<40} {src:>4}  {:>9.1?}  {:>12} cyc  {:>7.1} Mcyc/s{warm}\n",
            s.memo_key,
            s.wall,
            s.exec_cycles,
            s.cycles_per_sec() / 1e6,
        ));
        match s.source {
            JobSource::Fresh | JobSource::Forked => {
                fresh += 1;
                if s.source == JobSource::Forked {
                    forked += 1;
                }
                total_wall += s.wall;
                total_cycles += s.exec_cycles;
            }
            JobSource::DiskHit => replayed += 1,
            JobSource::Shared => shared += 1,
        }
    }
    let rate = if total_wall.is_zero() {
        0.0
    } else {
        total_cycles as f64 / total_wall.as_secs_f64() / 1e6
    };
    out.push_str(&format!(
        "  {fresh} simulated ({total_cycles} cycles in {total_wall:.1?} cpu-time, \
         {rate:.1} Mcyc/s), {replayed} replayed from disk\n",
    ));
    if forked + shared > 0 {
        out.push_str(&format!(
            "  {forked} of the simulations resumed from an in-memory prefix fork, \
             {shared} duplicate job(s) shared one execution\n",
        ));
    }
    out
}

/// Counters describing how a [`Runner`]'s sweeps exploited shared work:
/// prefix groups, in-memory forks, duplicate aliasing, and the wall-clock
/// the sweeps took end to end. Retrieved via [`Runner::prefix_stats`];
/// all counters accumulate across every [`Runner::sweep`] call on the
/// runner.
#[derive(Debug, Clone, Copy, Default)]
pub struct PrefixStats {
    /// Prefix groups planned (two or more jobs sharing a warmup window).
    pub groups: usize,
    /// Representative runs that captured a shared fork in flight
    /// (≤ `groups`; a representative that produced no fork — e.g. it
    /// warm-started past the warmup cycle — leaves its group mates cold
    /// and still counts a group).
    pub prefix_runs: usize,
    /// Wall-clock of the fork-capturing representative runs (full runs,
    /// not just their warmup windows).
    pub prefix_wall: Duration,
    /// Jobs that resumed from an in-memory fork instead of cycle 0.
    pub forked_jobs: usize,
    /// Duplicate jobs (identical cache key) aliased to one execution.
    pub shared_jobs: usize,
    /// Fresh simulations executed (cold and forked alike).
    pub simulated_jobs: usize,
    /// Jobs requested across all sweeps (memo hits included).
    pub swept_jobs: usize,
    /// End-to-end wall-clock of all sweeps.
    pub sweep_wall: Duration,
}

impl PrefixStats {
    /// Fraction of fresh simulations that resumed from a shared prefix
    /// fork — the sweep matrix's prefix-hit ratio.
    pub fn hit_ratio(&self) -> f64 {
        if self.simulated_jobs == 0 {
            0.0
        } else {
            self.forked_jobs as f64 / self.simulated_jobs as f64
        }
    }

    /// Jobs resolved per wall-clock second of sweeping.
    pub fn jobs_per_sec(&self) -> f64 {
        let secs = self.sweep_wall.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.swept_jobs as f64 / secs
        }
    }

    /// One-line footer for the `figures` stats report.
    pub fn report(&self) -> String {
        format!(
            "  sweep wall-clock {:.1?} ({:.1} jobs/s): {} prefix group(s), \
             {} fork-capturing representative(s) in {:.1?}, {} forked, {} deduped \
             (prefix-hit ratio {:.2})\n",
            self.sweep_wall,
            self.jobs_per_sec(),
            self.groups,
            self.prefix_runs,
            self.prefix_wall,
            self.forked_jobs,
            self.shared_jobs,
            self.hit_ratio(),
        )
    }
}

/// Memoizing experiment executor shared by all figure generators.
///
/// Results are resolved through three layers:
///
/// 1. an in-process memo (thread-safe; keyed by `workload|variant|tag`),
/// 2. an optional persistent [`DiskCache`] keyed by the *physical* job
///    identity ([`JobSpec::cache_key`]), so re-running `figures` only
///    simulates configurations it has never seen,
/// 3. a fresh simulation.
///
/// [`Runner::sweep`] resolves a batch of jobs on `jobs` worker threads.
/// Because every simulation is deterministic in its spec and results are
/// retrieved from the memo by key, figure output is bit-identical no
/// matter how many workers ran the sweep (or whether results came from
/// disk).
pub struct Runner {
    /// Base system configuration (before variant application).
    pub base_cfg: SystemConfig,
    /// Workload scale.
    pub scale: Scale,
    /// Workload seed.
    pub seed: u64,
    /// Watchdog limit per simulation.
    pub max_cycles: u64,
    /// Print one progress line per fresh run to stderr.
    pub verbose: bool,
    /// Worker threads used by [`Runner::sweep`].
    pub jobs: usize,
    /// Worker threads *inside* each simulation (the engine's conservative
    /// parallel scheduler); 1 runs sequentially. Orthogonal to `jobs`,
    /// which parallelizes across simulations. Excluded from cache keys:
    /// results are bit-identical at any thread count.
    pub threads: usize,
    /// Group sweep jobs by [`JobSpec::prefix_key`] and execute each
    /// group's warmup window once, forking the paused state in memory to
    /// every member (the default). `false` runs every job from cycle 0 —
    /// results are byte-identical either way, so this is host-side
    /// tuning, not a simulation input.
    pub prefix_share: bool,
    memo: Mutex<HashMap<String, Arc<RunResult>>>,
    disk: Option<DiskCache>,
    ckpt: Option<CheckpointStore>,
    checkpoint_at: Option<u64>,
    stats: Mutex<Vec<JobStat>>,
    prefix: Mutex<PrefixStats>,
}

impl Runner {
    /// Full experiment configuration: 4 GPUs × 8 CUs, paper-scale
    /// workloads. A complete `figures all` pass takes minutes.
    pub fn paper() -> Self {
        Self::with_base(SystemConfig::small(8), Scale::paper())
    }

    /// Scaled-down configuration for smoke tests and the bench suites:
    /// 2 CUs per GPU, tiny workloads.
    pub fn quick() -> Self {
        Self::with_base(SystemConfig::small(2), Scale::tiny())
    }

    /// A runner over an arbitrary configuration and scale.
    pub fn with_base(base_cfg: SystemConfig, scale: Scale) -> Self {
        Self {
            base_cfg,
            scale,
            seed: 0xC0FFEE,
            max_cycles: 300_000_000,
            verbose: false,
            jobs: 1,
            threads: 1,
            prefix_share: true,
            memo: Mutex::new(HashMap::new()),
            disk: None,
            ckpt: None,
            checkpoint_at: None,
            stats: Mutex::new(Vec::new()),
            prefix: Mutex::new(PrefixStats::default()),
        }
    }

    /// Enables or disables prefix-sharing in [`Runner::sweep`] (on by
    /// default; results are byte-identical either way).
    pub fn with_prefix_share(mut self, on: bool) -> Self {
        self.prefix_share = on;
        self
    }

    /// Sets the worker-thread count for [`Runner::sweep`] (0 is treated
    /// as 1).
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Sets the per-simulation worker-thread count (0 is treated as 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Attaches a persistent result cache rooted at `dir`.
    pub fn with_cache_dir(mut self, dir: impl Into<std::path::PathBuf>) -> std::io::Result<Self> {
        self.disk = Some(DiskCache::open(dir)?);
        Ok(self)
    }

    /// The attached disk cache, if any.
    pub fn disk_cache(&self) -> Option<&DiskCache> {
        self.disk.as_ref()
    }

    /// Attaches a snapshot store rooted at `dir`: fresh simulations
    /// warm-start from the longest cached prefix checkpoint of their
    /// physical cache key, and checkpoints requested via
    /// [`Runner::with_checkpoint_at`] are persisted there.
    pub fn with_checkpoint_dir(
        mut self,
        dir: impl Into<std::path::PathBuf>,
    ) -> std::io::Result<Self> {
        self.ckpt = Some(CheckpointStore::open(dir)?);
        Ok(self)
    }

    /// Requests a snapshot at `cycle` from every fresh simulation; stored
    /// in the checkpoint dir when one is attached.
    pub fn with_checkpoint_at(mut self, cycle: u64) -> Self {
        self.checkpoint_at = Some(cycle);
        self
    }

    /// The attached checkpoint store, if any.
    pub fn checkpoint_store(&self) -> Option<&CheckpointStore> {
        self.ckpt.as_ref()
    }

    /// The job spec for `workload` × `variant` on the base config.
    pub fn job(&self, workload: Workload, variant: SystemVariant) -> JobSpec {
        self.job_with(workload, variant, self.base_cfg, "")
    }

    /// The job spec for an alternate base configuration; `tag` must
    /// uniquely name the alteration for the memo cache.
    pub fn job_with(
        &self,
        workload: Workload,
        variant: SystemVariant,
        base_cfg: SystemConfig,
        tag: &str,
    ) -> JobSpec {
        JobSpec {
            workload,
            variant,
            base_cfg,
            scale: self.scale,
            seed: self.seed,
            max_cycles: self.max_cycles,
            threads: self.threads,
            tag: tag.to_owned(),
        }
    }

    /// Runs (or replays) `workload` under `variant` on the base config.
    pub fn run(&self, workload: Workload, variant: SystemVariant) -> Arc<RunResult> {
        self.run_job(&self.job(workload, variant))
    }

    /// Runs with an alternate base configuration; `tag` must uniquely
    /// name the alteration for the memo cache.
    pub fn run_with(
        &self,
        workload: Workload,
        variant: SystemVariant,
        base_cfg: SystemConfig,
        tag: &str,
    ) -> Arc<RunResult> {
        self.run_job(&self.job_with(workload, variant, base_cfg, tag))
    }

    /// Resolves one job through memo → disk → simulation.
    pub fn run_job(&self, job: &JobSpec) -> Arc<RunResult> {
        self.run_job_forked(job, None, None).0
    }

    /// [`Runner::run_job`] with the sweep tree's two fork roles: when
    /// `fork` is `Some`, a fresh simulation restores it and resumes from
    /// the warmup cycle instead of stepping from 0; when `fork_at` is
    /// `Some` (a group representative), the simulation pauses there,
    /// captures an in-memory fork for its group mates — returned
    /// alongside the result — and continues. Memo and disk lookups are
    /// unchanged: the forks only shortcut the simulations themselves, so
    /// results stay byte-identical to cold runs.
    fn run_job_forked(
        &self,
        job: &JobSpec,
        fork: Option<&ForkSnapshot>,
        fork_at: Option<u64>,
    ) -> (Arc<RunResult>, Option<ForkSnapshot>) {
        let memo_key = job.memo_key();
        if let Some(hit) = self.memo.lock().unwrap().get(&memo_key) {
            return (Arc::clone(hit), None);
        }
        let t0 = Instant::now();
        if let Some(disk) = &self.disk {
            if let Some(result) = disk.load(&job.cache_key()) {
                let result = Arc::new(result);
                self.finish(memo_key, JobSource::DiskHit, t0.elapsed(), &result);
                return (result, None);
            }
        }
        if self.verbose {
            eprintln!("  running {memo_key} …");
        }
        let mut plan = CheckpointPlan {
            checkpoint_at: self.checkpoint_at,
            fork_at,
            restore_from: None,
            fork: fork.cloned(),
        };
        // The persistent checkpoint tier is only consulted when no
        // in-memory fork is at hand: the fork is already resident and at
        // least as deep, and skipping the store keeps corrupt on-disk
        // snapshots out of the forked path entirely.
        if plan.fork.is_none() {
            if let Some(store) = &self.ckpt {
                if let Some((_, bytes)) = store.load_longest_prefix(&job.cache_key()) {
                    plan.restore_from = Some(bytes);
                }
            }
        }
        let exp = job.to_experiment();
        let run = match exp.run_checkpointed(&plan) {
            Ok(run) => run,
            Err(e) => {
                // A stale checkpoint (older snapshot version, changed
                // component roster) is a cache miss, not a fatal error.
                eprintln!("warning: unusable checkpoint for {memo_key} ({e}); simulating cold");
                plan.restore_from = None;
                plan.fork = None;
                exp.run_checkpointed(&plan)
                    .expect("cold run restores nothing")
            }
        };
        let forked = plan.fork.is_some();
        // Disk warm-starts are rare enough to always announce; forked
        // resumptions happen for most of a shared sweep and are already
        // summarized by the prefix report, so per-job lines are
        // verbose-only.
        if run.resumed_at > 0 && (self.verbose || !forked) {
            eprintln!(
                "  warm-start {memo_key}: simulated from cycle {} instead of 0",
                run.resumed_at
            );
        }
        if let Some(store) = &self.ckpt {
            if let Some((cycle, bytes)) = &run.snapshot {
                if let Err(e) = store.store(&job.cache_key(), *cycle, bytes) {
                    eprintln!("warning: cannot persist checkpoint for {memo_key}: {e}");
                }
            }
        }
        let result = run.result;
        let wall = t0.elapsed();
        if let Some(disk) = &self.disk {
            if let Err(e) = disk.store(&job.cache_key(), &result) {
                eprintln!("warning: cannot persist {memo_key}: {e}");
            }
        }
        let result = Arc::new(result);
        {
            let mut prefix = self.prefix.lock().unwrap();
            prefix.simulated_jobs += 1;
            if forked {
                prefix.forked_jobs += 1;
            }
        }
        let source = if forked {
            JobSource::Forked
        } else {
            JobSource::Fresh
        };
        self.finish_at(memo_key, source, wall, &result, run.resumed_at);
        (result, run.fork)
    }

    fn finish(&self, memo_key: String, source: JobSource, wall: Duration, result: &Arc<RunResult>) {
        self.finish_at(memo_key, source, wall, result, 0);
    }

    fn finish_at(
        &self,
        memo_key: String,
        source: JobSource,
        wall: Duration,
        result: &Arc<RunResult>,
        resumed_at: u64,
    ) {
        self.stats.lock().unwrap().push(JobStat {
            memo_key: memo_key.clone(),
            source,
            wall,
            exec_cycles: result.exec_cycles,
            resumed_at,
        });
        self.memo
            .lock()
            .unwrap()
            .insert(memo_key, Arc::clone(result));
    }

    /// Resolves a batch of jobs and returns the results in input order.
    ///
    /// The batch is planned as a *prefix-sharing tree* before anything
    /// runs (DESIGN.md §3.7):
    ///
    /// 1. Memo hits are dropped; duplicate memo keys collapse to one
    ///    entry; jobs whose memo keys differ but whose physical identity
    ///    ([`JobSpec::cache_key`]) is identical collapse to one
    ///    *execution* — the extras are aliased afterwards.
    /// 2. Jobs that will not replay from disk are grouped by
    ///    [`JobSpec::prefix_key`]; each group of two or more becomes an
    ///    internal tree node whose *representative* (the group's first
    ///    job in canonical order) runs from cycle 0, pauses at the warmup
    ///    cycle to capture an in-memory [`ForkSnapshot`], and continues
    ///    to completion. The other members restore the fork — no cycle of
    ///    the shared warmup window is ever simulated twice.
    /// 3. A deque of ready tasks is drained by [`Runner::jobs`] workers;
    ///    a completing representative pushes its group mates along with
    ///    the fork it captured, so divergent suffixes start the moment
    ///    their prefix unblocks them, with no barrier between tree
    ///    levels.
    ///
    /// Results are byte-identical to cold execution no matter how the
    /// tree was shaped or how many workers drained it; retrieval from the
    /// memo by key keeps output in canonical input order.
    pub fn sweep(&self, jobs: &[JobSpec]) -> Vec<Arc<RunResult>> {
        let t0 = Instant::now();
        // -- plan: dedupe, then group shareable jobs by prefix key --
        let mut pending: Vec<&JobSpec> = Vec::new();
        let mut aliases: Vec<(String, usize)> = Vec::new();
        {
            let memo = self.memo.lock().unwrap();
            let mut queued = HashSet::new();
            let mut physical: HashMap<String, usize> = HashMap::new();
            for job in jobs {
                let key = job.memo_key();
                if memo.contains_key(&key) || !queued.insert(key.clone()) {
                    continue;
                }
                match physical.entry(job.cache_key()) {
                    std::collections::hash_map::Entry::Occupied(e) => {
                        aliases.push((key, *e.get()));
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(pending.len());
                        pending.push(job);
                    }
                }
            }
        }
        let mut groups: Vec<Vec<usize>> = Vec::new();
        if self.prefix_share {
            let mut by_key: HashMap<String, Vec<usize>> = HashMap::new();
            for (i, job) in pending.iter().enumerate() {
                // A disk replay never simulates, so its prefix is not
                // worth paying for.
                if self
                    .disk
                    .as_ref()
                    .is_some_and(|d| d.contains(&job.cache_key()))
                {
                    continue;
                }
                if let Some(key) = job.prefix_key() {
                    by_key.entry(key).or_default().push(i);
                }
            }
            groups = by_key.into_values().filter(|g| g.len() >= 2).collect();
            // Deterministic planning order (HashMap iteration is not).
            groups.sort_by_key(|g| g[0]);
        }
        let grouped: HashSet<usize> = groups.iter().flatten().copied().collect();
        {
            let mut prefix = self.prefix.lock().unwrap();
            prefix.groups += groups.len();
            prefix.swept_jobs += jobs.len();
            prefix.shared_jobs += aliases.len();
        }

        // -- execute: work-stealing deque over tree nodes --
        enum Task {
            /// Run group `g`'s representative from cycle 0, capturing a
            /// fork of its paused warmup state in flight, then release
            /// the remaining members.
            Rep(usize),
            /// Resolve `pending[idx]`, restoring `fork` when present.
            Job(usize, Option<ForkSnapshot>),
        }
        struct Queue {
            tasks: std::collections::VecDeque<Task>,
            /// Unresolved leaf jobs, *including* members still deferred
            /// behind an unfinished representative — workers wait (rather
            /// than exit) while this is nonzero and the deque is empty.
            remaining: usize,
        }
        let mut tasks = std::collections::VecDeque::new();
        for g in 0..groups.len() {
            tasks.push_back(Task::Rep(g));
        }
        for i in 0..pending.len() {
            if !grouped.contains(&i) {
                tasks.push_back(Task::Job(i, None));
            }
        }
        let queue = Mutex::new(Queue {
            tasks,
            remaining: pending.len(),
        });
        let ready = Condvar::new();
        let worker = || loop {
            let task = {
                let mut q = queue.lock().unwrap();
                loop {
                    if q.remaining == 0 {
                        return;
                    }
                    if let Some(t) = q.tasks.pop_front() {
                        break t;
                    }
                    q = ready.wait(q).unwrap();
                }
            };
            match task {
                Task::Rep(g) => {
                    let rep = pending[groups[g][0]];
                    let t0 = Instant::now();
                    let (_, fork) = self.run_job_forked(rep, None, Some(rep.warmup_cycles()));
                    if fork.is_some() {
                        let mut prefix = self.prefix.lock().unwrap();
                        prefix.prefix_runs += 1;
                        prefix.prefix_wall += t0.elapsed();
                    } else if self.verbose {
                        // Legitimate, not an error: e.g. the representative
                        // warm-started from a disk checkpoint past the
                        // warmup cycle. The members simply run cold.
                        eprintln!(
                            "  no fork captured for {} group; members run cold",
                            rep.memo_key()
                        );
                    }
                    let mut q = queue.lock().unwrap();
                    for &idx in &groups[g][1..] {
                        q.tasks.push_back(Task::Job(idx, fork.clone()));
                    }
                    q.remaining -= 1;
                    drop(q);
                    ready.notify_all();
                }
                Task::Job(idx, fork) => {
                    self.run_job_forked(pending[idx], fork.as_ref(), None);
                    let mut q = queue.lock().unwrap();
                    q.remaining -= 1;
                    let done = q.remaining == 0;
                    drop(q);
                    if done {
                        ready.notify_all();
                    } else {
                        ready.notify_one();
                    }
                }
            }
        };
        let workers = self.jobs.max(1).min(pending.len());
        if workers <= 1 {
            worker();
        } else {
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(worker);
                }
            });
        }

        // -- alias duplicates to their primary's result --
        for (alias_key, idx) in aliases {
            let result = {
                let memo = self.memo.lock().unwrap();
                Arc::clone(&memo[&pending[idx].memo_key()])
            };
            self.finish(alias_key, JobSource::Shared, Duration::ZERO, &result);
        }
        self.prefix.lock().unwrap().sweep_wall += t0.elapsed();
        let memo = self.memo.lock().unwrap();
        jobs.iter()
            .map(|job| Arc::clone(&memo[&job.memo_key()]))
            .collect()
    }

    /// Accumulated prefix-sharing counters (see [`PrefixStats`]).
    pub fn prefix_stats(&self) -> PrefixStats {
        *self.prefix.lock().unwrap()
    }

    /// Number of completed (cached) runs.
    pub fn runs_completed(&self) -> usize {
        self.memo.lock().unwrap().len()
    }

    /// Per-job stats for every job resolved so far (simulated or replayed
    /// from disk), in completion order.
    pub fn job_stats(&self) -> Vec<JobStat> {
        self.stats.lock().unwrap().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_and_mean() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-9);
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-9);
        assert_eq!(geomean(&[]), 0.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn table_renders_markdown() {
        let mut t = Table::new("Demo", vec!["Workload", "Speedup"]);
        t.row(vec!["GUPS".into(), f2(1.5)]);
        let s = t.to_string();
        assert!(s.contains("### Demo"));
        assert!(s.contains("GUPS |"), "cells are right-aligned: {s}");
        assert!(s.contains("1.50"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new("Demo", vec!["A", "B"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn runner_memoizes() {
        let r = Runner::quick();
        let a = r.run(Workload::Gups, SystemVariant::Baseline);
        let b = r.run(Workload::Gups, SystemVariant::Baseline);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(r.runs_completed(), 1);
        // Only the fresh run is recorded; the memo replay is free.
        let stats = r.job_stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].source, JobSource::Fresh);
        assert_eq!(stats[0].exec_cycles, a.exec_cycles);
    }

    #[test]
    fn sweep_returns_input_order_and_dedups() {
        let r = Runner::quick().with_jobs(2);
        let jobs = vec![
            r.job(Workload::Gups, SystemVariant::Baseline),
            r.job(Workload::Gups, SystemVariant::Ideal),
            r.job(Workload::Gups, SystemVariant::Baseline), // duplicate
        ];
        let results = r.sweep(&jobs);
        assert_eq!(results.len(), 3);
        assert!(Arc::ptr_eq(&results[0], &results[2]));
        assert!(!Arc::ptr_eq(&results[0], &results[1]));
        assert_eq!(r.runs_completed(), 2, "duplicate simulated once");
        // A second sweep is fully memoized.
        let again = r.sweep(&jobs);
        assert!(Arc::ptr_eq(&results[0], &again[0]));
        assert_eq!(r.job_stats().len(), 2);
    }

    #[test]
    fn prefix_shared_sweep_matches_cold_results() {
        // The tentpole oracle at runner granularity: a warmup-window
        // sweep over several policy variants must produce byte-identical
        // results with and without prefix sharing — and the shared run
        // must actually fork.
        let variants = [
            SystemVariant::NetCrafter,
            SystemVariant::StitchTrim,
            SystemVariant::StitchOnly,
            SystemVariant::SeqOnly,
            SystemVariant::Baseline, // FIFO roster: never forked
        ];
        let mut shared = Runner::quick().with_jobs(3);
        shared.base_cfg.netcrafter.warmup_cycles = 400;
        let mut cold = Runner::quick().with_prefix_share(false);
        cold.base_cfg.netcrafter.warmup_cycles = 400;

        let jobs = |r: &Runner| -> Vec<JobSpec> {
            variants.iter().map(|&v| r.job(Workload::Gups, v)).collect()
        };
        let a = shared.sweep(&jobs(&shared));
        let b = cold.sweep(&jobs(&cold));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.exec_cycles, y.exec_cycles);
            assert_eq!(x.metrics.to_kv(), y.metrics.to_kv());
        }

        let ps = shared.prefix_stats();
        // NetCrafter+StitchTrim share an OnTrim-fill prefix; StitchOnly+
        // SeqOnly share a FullLine one; Baseline runs cold. Each group's
        // representative (NetCrafter, StitchOnly) runs from cycle 0 and
        // forks in flight, so only the non-representative member of each
        // pair resumes from the fork.
        assert_eq!(ps.groups, 2, "{ps:?}");
        assert_eq!(ps.prefix_runs, 2, "{ps:?}");
        assert_eq!(ps.forked_jobs, 2, "{ps:?}");
        assert_eq!(ps.simulated_jobs, 5, "{ps:?}");
        assert!((ps.hit_ratio() - 0.4).abs() < 1e-9);
        assert!(ps.sweep_wall > Duration::ZERO);
        assert!(ps.prefix_wall > Duration::ZERO);
        assert_eq!(cold.prefix_stats().forked_jobs, 0);

        // Stats record the forked jobs as such.
        let forked = shared
            .job_stats()
            .iter()
            .filter(|s| s.source == JobSource::Forked)
            .count();
        assert_eq!(forked, 2);
        assert!(shared
            .job_stats()
            .iter()
            .filter(|s| s.source == JobSource::Forked)
            .all(|s| s.resumed_at > 0 && s.resumed_at <= 400));
    }

    #[test]
    fn sweep_aliases_identical_physical_jobs() {
        // Two specs with different memo keys but one physical identity
        // (tag is display-only) share a single execution.
        let r = Runner::quick().with_jobs(2);
        let mut tagged = r.job(Workload::Gups, SystemVariant::Baseline);
        tagged.tag = "alias".into();
        let jobs = vec![r.job(Workload::Gups, SystemVariant::Baseline), tagged];
        let results = r.sweep(&jobs);
        assert!(Arc::ptr_eq(&results[0], &results[1]));
        assert_eq!(r.prefix_stats().shared_jobs, 1);
        let stats = r.job_stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(
            stats
                .iter()
                .filter(|s| s.source == JobSource::Shared)
                .count(),
            1
        );
        assert_eq!(
            stats
                .iter()
                .filter(|s| s.source == JobSource::Fresh)
                .count(),
            1
        );
    }

    #[test]
    fn no_sharing_without_warmup_window() {
        // warmup_cycles == 0 (the default): knobs act from cycle 0, so
        // nothing can group and the sweep runs exactly as before.
        let r = Runner::quick().with_jobs(2);
        let jobs = vec![
            r.job(Workload::Gups, SystemVariant::NetCrafter),
            r.job(Workload::Gups, SystemVariant::StitchTrim),
        ];
        r.sweep(&jobs);
        let ps = r.prefix_stats();
        assert_eq!(ps.groups, 0);
        assert_eq!(ps.forked_jobs, 0);
        assert_eq!(ps.simulated_jobs, 2);
    }

    #[test]
    fn prefix_stats_reports_render() {
        let mut ps = PrefixStats::default();
        assert_eq!(ps.hit_ratio(), 0.0);
        assert_eq!(ps.jobs_per_sec(), 0.0);
        ps.groups = 2;
        ps.prefix_runs = 2;
        ps.forked_jobs = 9;
        ps.simulated_jobs = 10;
        ps.shared_jobs = 1;
        ps.swept_jobs = 12;
        ps.sweep_wall = Duration::from_secs(2);
        assert!((ps.hit_ratio() - 0.9).abs() < 1e-9);
        assert!((ps.jobs_per_sec() - 6.0).abs() < 1e-9);
        let line = ps.report();
        assert!(line.contains("prefix-hit ratio 0.90"), "{line}");
        assert!(line.contains("2 prefix group(s)"), "{line}");
    }

    #[test]
    fn stats_report_summarizes() {
        let stats = vec![
            JobStat {
                memo_key: "GUPS|Baseline|".into(),
                source: JobSource::Fresh,
                wall: std::time::Duration::from_millis(10),
                exec_cycles: 1_000_000,
                resumed_at: 0,
            },
            JobStat {
                memo_key: "GUPS|Ideal|".into(),
                source: JobSource::DiskHit,
                wall: std::time::Duration::from_micros(50),
                exec_cycles: 900_000,
                resumed_at: 250_000,
            },
        ];
        let report = stats_report(&stats);
        assert!(report.contains("GUPS|Baseline|"));
        assert!(report.contains("1 simulated"));
        assert!(report.contains("1 replayed from disk"));
        assert!(report.contains("warm-start from cycle 250000"));
        assert!((stats[0].cycles_per_sec() - 1e8).abs() < 1e3);
    }
}
