//! A minimal self-calibrating micro-benchmark harness, replacing the
//! `criterion` dependency so the workspace builds fully offline.
//!
//! Each measurement warms the code path up, calibrates an iteration count
//! targeting a fixed measurement window, then reports the best-of-N batch
//! time per iteration (the minimum is the standard robust estimator for
//! micro-benchmarks — noise is strictly additive).

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target wall-clock time for one measurement batch.
const BATCH_TARGET: Duration = Duration::from_millis(100);
/// Number of measured batches (the minimum is reported).
const BATCHES: u32 = 5;

/// Runs `f` repeatedly and prints `name: <time>/iter (best of N)`.
pub fn bench<R>(name: &str, mut f: impl FnMut() -> R) {
    // Warm-up + calibration: how many iterations fill one batch?
    let mut iters = 1u64;
    let per_iter = loop {
        let t0 = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let elapsed = t0.elapsed();
        if elapsed >= Duration::from_millis(10) || iters >= 1 << 24 {
            break elapsed / iters.max(1) as u32;
        }
        iters *= 4;
    };
    let per_batch = (BATCH_TARGET.as_nanos() / per_iter.as_nanos().max(1)) as u64;
    let per_batch = per_batch.clamp(1, 1 << 24);

    let mut best = Duration::MAX;
    for _ in 0..BATCHES {
        let t0 = Instant::now();
        for _ in 0..per_batch {
            black_box(f());
        }
        best = best.min(t0.elapsed() / per_batch as u32);
    }
    println!(
        "{name:<44} {:>12} /iter  (best of {BATCHES}, {per_batch} iters/batch)",
        fmt(best)
    );
}

/// Like [`bench`], but rebuilds fresh input state outside the timed
/// region on every iteration (criterion's `iter_batched`).
pub fn bench_with_setup<S, R>(name: &str, mut setup: impl FnMut() -> S, mut f: impl FnMut(S) -> R) {
    // Setup cost can dwarf the payload, so time iterations individually.
    let mut best = Duration::MAX;
    let mut measured = 0u32;
    let t_all = Instant::now();
    while measured < 200 && (measured < 10 || t_all.elapsed() < BATCH_TARGET * BATCHES) {
        let state = setup();
        let t0 = Instant::now();
        black_box(f(state));
        best = best.min(t0.elapsed());
        measured += 1;
    }
    println!(
        "{name:<44} {:>12} /iter  (best of {measured} timed runs)",
        fmt(best)
    );
}

fn fmt(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}
