//! One generator per paper table/figure. Each returns a [`Table`] whose
//! rows correspond to the series the paper plots; EXPERIMENTS.md records
//! a full paper-scale output next to the published values.

use netcrafter_multigpu::{JobSpec, System, SystemVariant};
use netcrafter_net::Topology;
use netcrafter_proto::{
    AccessId, GpuId, LineAddr, LineMask, MemReq, NodeId, Origin, Packet, PacketId, PacketKind,
    PacketPayload, SystemConfig, TrafficClass, ALL_PACKET_KINDS,
};
use netcrafter_workloads::Workload;

use crate::{f2, geomean, mean, pct, Runner, Table};

/// Returns every figure/table id known to [`generate`].
pub fn all_ids() -> Vec<&'static str> {
    vec![
        "table1", "table3", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig12",
        "fig14", "fig15", "fig16", "fig17", "fig18", "fig19", "fig20", "fig21", "fig22",
        "ablation", "scaling", "topology",
    ]
}

/// Dispatches a figure id to its generator.
///
/// # Panics
///
/// Panics on an unknown id (the CLI validates first).
pub fn generate(id: &str, runner: &Runner) -> Table {
    match id {
        "table1" => table1(),
        "table3" => table3(),
        "fig3" => fig3(runner),
        "fig4" => fig4(runner),
        "fig5" => fig5(runner),
        "fig6" => fig6(runner),
        "fig7" => fig7(runner),
        "fig8" => fig8(runner),
        "fig9" => fig9(runner),
        "fig12" => fig12(runner),
        "fig14" => fig14(runner),
        "fig15" => fig15(runner),
        "fig16" => fig16(runner),
        "fig17" => fig17(runner),
        "fig18" => fig18(runner),
        "fig19" => fig19(runner),
        "fig20" => fig20(runner),
        "fig21" => fig21(runner),
        "fig22" => fig22(runner),
        "ablation" => ablation_search_depth(runner),
        "scaling" => extension_cluster_scaling(runner),
        "topology" => extension_topology_sweep(runner),
        other => panic!("unknown figure id {other:?}"),
    }
}

/// Enumerates every [`Runner::run`]/[`Runner::run_with`] call the
/// generator for `id` will make, as job specs for [`Runner::sweep`].
///
/// The `figures` binary collects these for all requested ids and resolves
/// them in one parallel sweep before generating; the generators then hit
/// a warm memo, so their output is identical to a sequential run.
/// `fig17` and `ablation` build systems directly (custom kernels and
/// config knobs no [`SystemVariant`] expresses) and contribute only the
/// baseline runs they share with other figures.
pub fn sweep_jobs(id: &str, r: &Runner) -> Vec<JobSpec> {
    let mut jobs = Vec::new();
    let for_all = |variants: &[SystemVariant], jobs: &mut Vec<JobSpec>| {
        for w in Workload::ALL {
            for &v in variants {
                jobs.push(r.job(w, v));
            }
        }
    };
    let selpool32 = SystemVariant::StitchPool {
        window: 32,
        selective: true,
    };
    match id {
        "table1" | "table3" | "fig17" => {}
        "fig3" | "fig4" | "fig5" => {
            for_all(&[SystemVariant::Baseline, SystemVariant::Ideal], &mut jobs);
        }
        "fig6" | "fig7" | "fig9" => for_all(&[SystemVariant::Baseline], &mut jobs),
        "fig8" => for_all(
            &[
                SystemVariant::Baseline,
                SystemVariant::SeqOnly,
                SystemVariant::DataPrio,
            ],
            &mut jobs,
        ),
        "fig12" => for_all(
            &[
                SystemVariant::StitchOnly,
                SystemVariant::StitchPool {
                    window: 32,
                    selective: false,
                },
            ],
            &mut jobs,
        ),
        "fig14" => for_all(
            &[
                SystemVariant::Baseline,
                selpool32,
                SystemVariant::StitchTrim,
                SystemVariant::NetCrafter,
                SystemVariant::SectorCache,
            ],
            &mut jobs,
        ),
        "fig15" => for_all(
            &[SystemVariant::Baseline, SystemVariant::NetCrafter],
            &mut jobs,
        ),
        "fig16" => for_all(
            &[
                SystemVariant::Baseline,
                SystemVariant::TrimOnly,
                SystemVariant::SectorCache,
            ],
            &mut jobs,
        ),
        "fig18" | "fig19" | "fig20" => {
            let selective = id != "fig18";
            let mut variants = vec![SystemVariant::Baseline, SystemVariant::StitchOnly];
            for window in [32, 64, 96, 128] {
                variants.push(SystemVariant::StitchPool { window, selective });
            }
            for_all(&variants, &mut jobs);
        }
        "fig21" => {
            let mut cfg8 = r.base_cfg;
            cfg8.flit_bytes = 8;
            for w in Workload::ALL {
                for v in [SystemVariant::Baseline, selpool32] {
                    jobs.push(r.job(w, v));
                    jobs.push(r.job_with(w, v, cfg8, "flit8"));
                }
            }
        }
        "fig22" => {
            for w in Workload::ALL {
                for (intra, inter, label) in FIG22_CONFIGS {
                    let mut cfg = r.base_cfg;
                    cfg.topology.intra_gbps = intra;
                    cfg.topology.inter_gbps = inter;
                    for v in [SystemVariant::Baseline, SystemVariant::NetCrafter] {
                        jobs.push(r.job_with(w, v, cfg, label));
                    }
                }
            }
        }
        "ablation" => {
            for w in [Workload::Gups, Workload::Spmv, Workload::Mt] {
                jobs.push(r.job(w, SystemVariant::Baseline));
            }
        }
        "scaling" => {
            for w in [
                Workload::Gups,
                Workload::Spmv,
                Workload::Pr,
                Workload::Vgg16,
            ] {
                for clusters in 1u16..=4 {
                    let mut cfg = r.base_cfg;
                    cfg.topology.clusters = clusters;
                    let tag = format!("clusters{clusters}");
                    for v in [SystemVariant::Baseline, SystemVariant::NetCrafter] {
                        jobs.push(r.job_with(w, v, cfg, &tag));
                    }
                }
            }
        }
        "topology" => {
            for (tag, cfg) in topology_sweep_points(r) {
                for w in TOPOLOGY_WORKLOADS {
                    for v in [SystemVariant::Baseline, SystemVariant::NetCrafter] {
                        jobs.push(topology_job(r, w, v, cfg, &tag));
                    }
                }
            }
        }
        other => panic!("unknown figure id {other:?}"),
    }
    jobs
}

/// Table 1: the six packet categories and their 16 B-flit geometry.
/// Computed from the packet model, not hard-coded, so it stays in lock
/// step with the protocol implementation.
pub fn table1() -> Table {
    let mut t = Table::new(
        "Table 1: 16 B flit occupancy by request type",
        vec![
            "Request Type",
            "Bytes Occupied",
            "Bytes Required",
            "Bytes Padded",
            "Flits Occupied",
        ],
    );
    for kind in ALL_PACKET_KINDS {
        let payload = match kind {
            PacketKind::WriteReq | PacketKind::ReadRsp => 64,
            _ => 0,
        };
        let p = Packet {
            id: PacketId(0),
            kind,
            src: NodeId(0),
            dst: NodeId(1),
            payload_bytes: payload,
            trim: None,
            inner: PacketPayload::Req(MemReq {
                access: AccessId(0),
                line: LineAddr(0),
                write: kind == PacketKind::WriteReq,
                mask: LineMask::FULL,
                sectors: 0b1111,
                class: if kind.is_ptw() {
                    TrafficClass::Ptw
                } else {
                    TrafficClass::Data
                },
                requester: GpuId(0),
                owner: GpuId(1),
                origin: Origin::Cu(0),
            }),
        };
        t.row(vec![
            kind.label().to_owned(),
            (p.flit_count(16) * 16).to_string(),
            p.wire_bytes().to_string(),
            p.padded_bytes(16).to_string(),
            p.flit_count(16).to_string(),
        ]);
    }
    t
}

/// Table 3: the evaluated workloads.
pub fn table3() -> Table {
    let mut t = Table::new(
        "Table 3: evaluated applications",
        vec!["Abbr.", "Application", "Access Pattern", "Benchmark Suite"],
    );
    for w in Workload::ALL {
        t.row(vec![
            w.abbrev().to_owned(),
            w.description().to_owned(),
            w.pattern().to_owned(),
            w.suite().to_owned(),
        ]);
    }
    t
}

/// Figure 3: speedup of the *ideal* uniform-high-bandwidth node over the
/// non-uniform baseline.
pub fn fig3(r: &Runner) -> Table {
    let mut t = Table::new(
        "Figure 3: ideal (uniform 128 GB/s) speedup over non-uniform baseline",
        vec!["Workload", "Baseline cycles", "Ideal cycles", "Speedup"],
    );
    let mut speedups = Vec::new();
    for w in Workload::ALL {
        let base = r.run(w, SystemVariant::Baseline);
        let ideal = r.run(w, SystemVariant::Ideal);
        let s = base.exec_cycles as f64 / ideal.exec_cycles as f64;
        speedups.push(s);
        t.row(vec![
            w.abbrev().into(),
            base.exec_cycles.to_string(),
            ideal.exec_cycles.to_string(),
            f2(s),
        ]);
    }
    t.row(vec![
        "GEOMEAN".into(),
        "-".into(),
        "-".into(),
        f2(geomean(&speedups)),
    ]);
    t.row(vec![
        "AVG".into(),
        "-".into(),
        "-".into(),
        f2(mean(&speedups)),
    ]);
    t
}

/// Figure 4: inter-cluster link utilization, baseline vs ideal.
pub fn fig4(r: &Runner) -> Table {
    let mut t = Table::new(
        "Figure 4: inter-cluster network utilization",
        vec!["Workload", "Non-uniform", "Ideal"],
    );
    let (mut b_all, mut i_all) = (Vec::new(), Vec::new());
    for w in Workload::ALL {
        let base = r.run(w, SystemVariant::Baseline);
        let ideal = r.run(w, SystemVariant::Ideal);
        b_all.push(base.inter_utilization());
        i_all.push(ideal.inter_utilization());
        t.row(vec![
            w.abbrev().into(),
            pct(base.inter_utilization()),
            pct(ideal.inter_utilization()),
        ]);
    }
    t.row(vec!["AVG".into(), pct(mean(&b_all)), pct(mean(&i_all))]);
    t
}

/// Figure 5: average inter-cluster memory access latency of the ideal
/// configuration, normalized to the non-uniform baseline (= 1.0).
pub fn fig5(r: &Runner) -> Table {
    let mut t = Table::new(
        "Figure 5: avg inter-cluster read latency (normalized to non-uniform)",
        vec![
            "Workload",
            "Non-uniform (cycles)",
            "Ideal (cycles)",
            "Ideal normalized",
        ],
    );
    let mut ratios = Vec::new();
    for w in Workload::ALL {
        let base = r.run(w, SystemVariant::Baseline);
        let ideal = r.run(w, SystemVariant::Ideal);
        let (b, i) = (base.inter_read_latency(), ideal.inter_read_latency());
        let norm = if b > 0.0 { i / b } else { 1.0 };
        if b > 0.0 {
            ratios.push(norm);
        }
        t.row(vec![
            w.abbrev().into(),
            format!("{b:.0}"),
            format!("{i:.0}"),
            f2(norm),
        ]);
    }
    t.row(vec![
        "AVG".into(),
        "-".into(),
        "-".into(),
        f2(mean(&ratios)),
    ]);
    t
}

/// Figure 6: fraction of inter-cluster flits with 25% / 75% padding in
/// the baseline.
pub fn fig6(r: &Runner) -> Table {
    let mut t = Table::new(
        "Figure 6: flit occupancy distribution on the inter-cluster link (baseline)",
        vec!["Workload", "25% padded", "75% padded", "25%+75% total"],
    );
    let mut totals = Vec::new();
    for w in Workload::ALL {
        let base = r.run(w, SystemVariant::Baseline);
        let p25 = base.padding_fraction(25);
        let p75 = base.padding_fraction(75);
        totals.push(p25 + p75);
        t.row(vec![w.abbrev().into(), pct(p25), pct(p75), pct(p25 + p75)]);
    }
    t.row(vec![
        "AVG".into(),
        "-".into(),
        "-".into(),
        pct(mean(&totals)),
    ]);
    t
}

/// Figure 7: inter-cluster read requests by bytes required.
pub fn fig7(r: &Runner) -> Table {
    let mut t = Table::new(
        "Figure 7: inter-cluster reads by cache-line bytes required",
        vec!["Workload", "<=16B", "<=32B", "<=48B", "64B"],
    );
    for w in Workload::ALL {
        let base = r.run(w, SystemVariant::Baseline);
        let f = base.fig7_fractions();
        t.row(vec![
            w.abbrev().into(),
            pct(f[0]),
            pct(f[1]),
            pct(f[2]),
            pct(f[3]),
        ]);
    }
    t
}

/// Figure 8: prioritizing read-PTW accesses helps; prioritizing the same
/// class of data accesses hurts.
pub fn fig8(r: &Runner) -> Table {
    let mut t = Table::new(
        "Figure 8: speedup of prioritizing PTW vs data accesses (vs baseline)",
        vec!["Workload", "Prioritize PTW", "Prioritize data"],
    );
    let (mut ptw_all, mut data_all) = (Vec::new(), Vec::new());
    for w in Workload::ALL {
        let base = r.run(w, SystemVariant::Baseline);
        let ptw = r.run(w, SystemVariant::SeqOnly);
        let data = r.run(w, SystemVariant::DataPrio);
        let sp = |x: u64| base.exec_cycles as f64 / x as f64;
        ptw_all.push(sp(ptw.exec_cycles));
        data_all.push(sp(data.exec_cycles));
        t.row(vec![
            w.abbrev().into(),
            f2(sp(ptw.exec_cycles)),
            f2(sp(data.exec_cycles)),
        ]);
    }
    t.row(vec![
        "GEOMEAN".into(),
        f2(geomean(&ptw_all)),
        f2(geomean(&data_all)),
    ]);
    t
}

/// Figure 9: PTW vs data share of inter-cluster traffic (baseline).
pub fn fig9(r: &Runner) -> Table {
    let mut t = Table::new(
        "Figure 9: PTW-related share of inter-cluster bytes (baseline)",
        vec!["Workload", "PTW", "Data"],
    );
    let mut shares = Vec::new();
    for w in Workload::ALL {
        let base = r.run(w, SystemVariant::Baseline);
        let s = base.ptw_byte_share();
        shares.push(s);
        t.row(vec![w.abbrev().into(), pct(s), pct(1.0 - s)]);
    }
    t.row(vec![
        "AVG".into(),
        pct(mean(&shares)),
        pct(1.0 - mean(&shares)),
    ]);
    t
}

/// Figure 12: percentage of flits stitched, before and after Flit
/// Pooling.
pub fn fig12(r: &Runner) -> Table {
    let mut t = Table::new(
        "Figure 12: flits stitched, Stitching alone vs with 32-cycle Flit Pooling",
        vec!["Workload", "Stitching", "Stitching+Pooling"],
    );
    let (mut a_all, mut b_all) = (Vec::new(), Vec::new());
    for w in Workload::ALL {
        let alone = r.run(w, SystemVariant::StitchOnly);
        let pooled = r.run(
            w,
            SystemVariant::StitchPool {
                window: 32,
                selective: false,
            },
        );
        a_all.push(alone.stitched_fraction());
        b_all.push(pooled.stitched_fraction());
        t.row(vec![
            w.abbrev().into(),
            pct(alone.stitched_fraction()),
            pct(pooled.stitched_fraction()),
        ]);
    }
    t.row(vec!["AVG".into(), pct(mean(&a_all)), pct(mean(&b_all))]);
    t
}

/// Figure 14: overall speedup of the cumulative NetCrafter mechanisms and
/// the sector-cache baseline, normalized to the non-uniform baseline.
pub fn fig14(r: &Runner) -> Table {
    let mut t = Table::new(
        "Figure 14: overall speedup over the non-uniform baseline",
        vec![
            "Workload",
            "Stitching",
            "+Trimming",
            "+Sequencing (NetCrafter)",
            "SectorCache(16B)",
        ],
    );
    let variants = [
        SystemVariant::StitchPool {
            window: 32,
            selective: true,
        },
        SystemVariant::StitchTrim,
        SystemVariant::NetCrafter,
        SystemVariant::SectorCache,
    ];
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); variants.len()];
    for w in Workload::ALL {
        let base = r.run(w, SystemVariant::Baseline);
        let mut cells = vec![w.abbrev().to_owned()];
        for (i, v) in variants.iter().enumerate() {
            let res = r.run(w, *v);
            let s = base.exec_cycles as f64 / res.exec_cycles as f64;
            cols[i].push(s);
            cells.push(f2(s));
        }
        t.row(cells);
    }
    let mut gm = vec!["GEOMEAN".to_owned()];
    let mut mx = vec!["MAX".to_owned()];
    for col in &cols {
        gm.push(f2(geomean(col)));
        mx.push(f2(col.iter().copied().fold(0.0_f64, f64::max)));
    }
    t.row(gm);
    t.row(mx);
    t
}

/// Figure 15: average inter-cluster read latency, baseline vs NetCrafter.
pub fn fig15(r: &Runner) -> Table {
    let mut t = Table::new(
        "Figure 15: avg inter-cluster read latency, baseline vs NetCrafter",
        vec![
            "Workload",
            "Baseline (cycles)",
            "NetCrafter (cycles)",
            "NetCrafter normalized",
        ],
    );
    let mut ratios = Vec::new();
    for w in Workload::ALL {
        let base = r.run(w, SystemVariant::Baseline);
        let nc = r.run(w, SystemVariant::NetCrafter);
        let (b, n) = (base.inter_read_latency(), nc.inter_read_latency());
        let norm = if b > 0.0 { n / b } else { 1.0 };
        if b > 0.0 {
            ratios.push(norm);
        }
        t.row(vec![
            w.abbrev().into(),
            format!("{b:.0}"),
            format!("{n:.0}"),
            f2(norm),
        ]);
    }
    t.row(vec![
        "AVG".into(),
        "-".into(),
        "-".into(),
        f2(mean(&ratios)),
    ]);
    t
}

/// Figure 16: L1 MPKI under NetCrafter's selective Trimming vs the
/// 16 B sector cache that trims everywhere.
pub fn fig16(r: &Runner) -> Table {
    let mut t = Table::new(
        "Figure 16: L1 MPKI — baseline vs Trimming vs 16 B sector cache",
        vec![
            "Workload",
            "Baseline",
            "Trimming (NetCrafter)",
            "SectorCache(16B)",
        ],
    );
    for w in Workload::ALL {
        let base = r.run(w, SystemVariant::Baseline);
        let trim = r.run(w, SystemVariant::TrimOnly);
        let sector = r.run(w, SystemVariant::SectorCache);
        t.row(vec![
            w.abbrev().into(),
            f2(base.l1_mpki()),
            f2(trim.l1_mpki()),
            f2(sector.l1_mpki()),
        ]);
    }
    t
}

/// Figure 17: large-GEMM L1 MPKI as a function of trimming / sector
/// granularity (4, 8, 16 B), selective Trimming vs all-trimming.
pub fn fig17(r: &Runner) -> Table {
    let mut t = Table::new(
        "Figure 17: large GEMM L1 MPKI vs granularity",
        vec![
            "Granularity",
            "Trimming (inter-cluster only)",
            "All-trimming (sector cache)",
        ],
    );
    for g in [4u32, 8, 16] {
        let mut cells = vec![format!("{g}B")];
        for v in [SystemVariant::TrimOnly, SystemVariant::SectorCache] {
            let mut cfg = v.apply(r.base_cfg);
            cfg.trim_granularity = g;
            let kernel = netcrafter_workloads::gen::large_gemm(&r.scale, cfg.total_gpus(), r.seed);
            let mut sys = System::build(cfg, &kernel);
            let exec = sys.run(300_000_000);
            let m = sys.harvest();
            let mpki = 1000.0 * m.counter("total.l1.misses") as f64
                / m.counter("total.cu.instructions").max(1) as f64;
            let _ = exec;
            cells.push(f2(mpki));
        }
        t.row(cells);
    }
    t
}

fn pooling_sweep(r: &Runner, selective: bool, title: &str) -> Table {
    let mut t = Table::new(
        title,
        vec![
            "Workload",
            "Stitching",
            "Pool32",
            "Pool64",
            "Pool96",
            "Pool128",
        ],
    );
    let windows = [0u32, 32, 64, 96, 128];
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); windows.len()];
    for w in Workload::ALL {
        let base = r.run(w, SystemVariant::Baseline);
        let mut cells = vec![w.abbrev().to_owned()];
        for (i, &window) in windows.iter().enumerate() {
            let v = if window == 0 {
                SystemVariant::StitchOnly
            } else {
                SystemVariant::StitchPool { window, selective }
            };
            let res = r.run(w, v);
            let s = base.exec_cycles as f64 / res.exec_cycles as f64;
            cols[i].push(s);
            cells.push(f2(s));
        }
        t.row(cells);
    }
    let mut gm = vec!["GEOMEAN".to_owned()];
    for col in &cols {
        gm.push(f2(geomean(col)));
    }
    t.row(gm);
    t
}

/// Figure 18: Stitching with plain Flit Pooling, 32–128-cycle windows.
pub fn fig18(r: &Runner) -> Table {
    pooling_sweep(
        r,
        false,
        "Figure 18: speedup, Stitching + Flit Pooling (window sweep)",
    )
}

/// Figure 19: Stitching with *Selective* Flit Pooling, 32–128 cycles.
pub fn fig19(r: &Runner) -> Table {
    pooling_sweep(
        r,
        true,
        "Figure 19: speedup, Stitching + Selective Flit Pooling (window sweep)",
    )
}

/// Figure 20: reduction in inter-cluster network bytes vs baseline.
pub fn fig20(r: &Runner) -> Table {
    let mut t = Table::new(
        "Figure 20: inter-cluster byte reduction vs baseline",
        vec![
            "Workload",
            "Stitching",
            "SelPool32",
            "SelPool64",
            "SelPool96",
            "SelPool128",
        ],
    );
    let windows = [0u32, 32, 64, 96, 128];
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); windows.len()];
    for w in Workload::ALL {
        let base = r.run(w, SystemVariant::Baseline);
        let base_bytes = base.inter_link_bytes().max(1);
        let mut cells = vec![w.abbrev().to_owned()];
        for (i, &window) in windows.iter().enumerate() {
            let v = if window == 0 {
                SystemVariant::StitchOnly
            } else {
                SystemVariant::StitchPool {
                    window,
                    selective: true,
                }
            };
            let res = r.run(w, v);
            let reduction = 1.0 - res.inter_link_bytes() as f64 / base_bytes as f64;
            cols[i].push(reduction);
            cells.push(pct(reduction));
        }
        t.row(cells);
    }
    let mut avg = vec!["AVG".to_owned()];
    for col in &cols {
        avg.push(pct(mean(col)));
    }
    t.row(avg);
    t
}

/// Figure 21: Stitching + Selective Pooling speedup at 8 B vs 16 B flits
/// (each normalized to the baseline at its own flit size).
pub fn fig21(r: &Runner) -> Table {
    let mut t = Table::new(
        "Figure 21: stitching benefit at 8 B vs 16 B flit size",
        vec!["Workload", "16B flits", "8B flits"],
    );
    let mut cfg8 = r.base_cfg;
    cfg8.flit_bytes = 8;
    let (mut s16_all, mut s8_all) = (Vec::new(), Vec::new());
    let stitch = SystemVariant::StitchPool {
        window: 32,
        selective: true,
    };
    for w in Workload::ALL {
        let b16 = r.run(w, SystemVariant::Baseline);
        let s16 = r.run(w, stitch);
        let b8 = r.run_with(w, SystemVariant::Baseline, cfg8, "flit8");
        let s8 = r.run_with(w, stitch, cfg8, "flit8");
        let sp16 = b16.exec_cycles as f64 / s16.exec_cycles as f64;
        let sp8 = b8.exec_cycles as f64 / s8.exec_cycles as f64;
        s16_all.push(sp16);
        s8_all.push(sp8);
        t.row(vec![w.abbrev().into(), f2(sp16), f2(sp8)]);
    }
    t.row(vec![
        "GEOMEAN".into(),
        f2(geomean(&s16_all)),
        f2(geomean(&s8_all)),
    ]);
    t
}

/// The `(intra, inter, label)` bandwidth points of Figure 22, shared with
/// [`sweep_jobs`] (the labels double as memo tags).
const FIG22_CONFIGS: [(f64, f64, &str); 6] = [
    (128.0, 16.0, "128:16 (8:1)"),
    (256.0, 32.0, "256:32 (8:1)"),
    (512.0, 64.0, "512:64 (8:1)"),
    (128.0, 32.0, "128:32 (4:1)"),
    (128.0, 64.0, "128:64 (2:1)"),
    (32.0, 32.0, "32:32 (homog.)"),
];

/// Figure 22: NetCrafter speedup across bandwidth ratios/values,
/// including a homogeneous configuration.
pub fn fig22(r: &Runner) -> Table {
    let configs = FIG22_CONFIGS;
    let mut header = vec!["Workload"];
    for (_, _, label) in &configs {
        header.push(label);
    }
    let mut t = Table::new(
        "Figure 22: NetCrafter speedup across bandwidth configurations",
        header,
    );
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); configs.len()];
    for w in Workload::ALL {
        let mut cells = vec![w.abbrev().to_owned()];
        for (i, (intra, inter, label)) in configs.iter().enumerate() {
            let mut cfg = r.base_cfg;
            cfg.topology.intra_gbps = *intra;
            cfg.topology.inter_gbps = *inter;
            let base = r.run_with(w, SystemVariant::Baseline, cfg, label);
            let nc = r.run_with(w, SystemVariant::NetCrafter, cfg, label);
            let s = base.exec_cycles as f64 / nc.exec_cycles as f64;
            cols[i].push(s);
            cells.push(f2(s));
        }
        t.row(cells);
    }
    let mut gm = vec!["GEOMEAN".to_owned()];
    for col in &cols {
        gm.push(f2(geomean(col)));
    }
    t.row(gm);
    t
}

/// Design-space ablation (not in the paper): how wide must the Stitching
/// Engine's candidate search be? Sweeps the per-partition search depth
/// and reports the stitched-away flit fraction and speedup for three
/// stitch-friendly workloads.
pub fn ablation_search_depth(r: &Runner) -> Table {
    let depths = [1u32, 4, 16, 64];
    let mut header = vec!["Workload".to_owned()];
    for d in depths {
        header.push(format!("stitch%@{d}"));
        header.push(format!("speedup@{d}"));
    }
    let mut t = Table::new(
        "Ablation: stitch candidate search depth (Stitching only)",
        header.iter().map(String::as_str).collect(),
    );
    for w in [Workload::Gups, Workload::Spmv, Workload::Mt] {
        let base = r.run(w, SystemVariant::Baseline);
        let mut cells = vec![w.abbrev().to_owned()];
        for d in depths {
            // Built directly: SystemVariant would overwrite the depth.
            let mut cfg = r.base_cfg;
            cfg.netcrafter = netcrafter_proto::NetCrafterConfig {
                stitching: true,
                stitch_search_depth: d,
                ..netcrafter_proto::NetCrafterConfig::disabled()
            };
            let kernel = w.generate(&r.scale, cfg.total_gpus(), r.seed);
            let mut sys = System::build(cfg, &kernel);
            let exec = sys.run(300_000_000);
            let m = sys.harvest();
            let absorbed = m.counter("net.inter.cq.absorbed");
            let popped = m.counter("net.inter.cq.popped");
            let frac = if absorbed + popped == 0 {
                0.0
            } else {
                absorbed as f64 / (absorbed + popped) as f64
            };
            cells.push(pct(frac));
            cells.push(f2(base.exec_cycles as f64 / exec as f64));
        }
        t.row(cells);
    }
    t
}

/// Extension study (not in the paper): does NetCrafter keep helping as
/// the node grows? Sweeps the cluster count at 2 GPUs per cluster — more
/// clusters mean more inter-cluster traffic crossing more slow links.
pub fn extension_cluster_scaling(r: &Runner) -> Table {
    let mut t = Table::new(
        "Extension: NetCrafter speedup vs cluster count (2 GPUs/cluster)",
        vec![
            "Workload",
            "1 cluster",
            "2 clusters",
            "3 clusters",
            "4 clusters",
        ],
    );
    for w in [
        Workload::Gups,
        Workload::Spmv,
        Workload::Pr,
        Workload::Vgg16,
    ] {
        let mut cells = vec![w.abbrev().to_owned()];
        for clusters in 1u16..=4 {
            let mut cfg = r.base_cfg;
            cfg.topology.clusters = clusters;
            let tag = format!("clusters{clusters}");
            let base = r.run_with(w, SystemVariant::Baseline, cfg, &tag);
            let nc = r.run_with(w, SystemVariant::NetCrafter, cfg, &tag);
            cells.push(f2(base.exec_cycles as f64 / nc.exec_cycles as f64));
        }
        t.row(cells);
    }
    t
}

/// Workloads driven across every fabric by the `topology` figure and the
/// CI topology perf gate: a latency-bound, a sparse, and an
/// iterative-graph pattern, so multi-hop effects show on more than one
/// traffic shape without sweeping the full 15-workload matrix per fabric.
pub const TOPOLOGY_WORKLOADS: [Workload; 3] = [Workload::Gups, Workload::Spmv, Workload::Pr];

/// The fabric points of the `topology` figure: `(memo tag, config)` for
/// the mesh baseline plus each scale-out preset. Presets contribute only
/// their topology; every compute parameter (CUs, caches, scale) comes
/// from the runner's base config so `--quick` stays quick. The mesh
/// point keeps the empty tag and therefore shares its runs with the
/// other figures' memo entries.
pub fn topology_sweep_points(r: &Runner) -> Vec<(String, SystemConfig)> {
    let mut points = vec![(String::new(), r.base_cfg)];
    for (name, preset) in [
        ("fat-tree-8", SystemConfig::fat_tree_8()),
        ("fat-tree-16", SystemConfig::fat_tree_16()),
        ("torus-8", SystemConfig::torus_8()),
    ] {
        let mut cfg = r.base_cfg;
        cfg.topology = preset.topology;
        points.push((format!("topo-{name}"), cfg));
    }
    points
}

/// The job for one topology-sweep cell. The launch is re-scaled with
/// `Scale::for_gpus` so bigger fabrics keep the 4-GPU mesh's per-GPU
/// load instead of spreading one mesh-sized kernel ever thinner (the
/// mesh point itself is the identity, so it still shares memo entries
/// with the other figures).
pub fn topology_job(
    r: &Runner,
    w: Workload,
    v: SystemVariant,
    cfg: SystemConfig,
    tag: &str,
) -> JobSpec {
    let mut job = r.job_with(w, v, cfg, tag);
    job.scale = job.scale.for_gpus(cfg.topology.total_gpus());
    job
}

/// Extension study (not in the paper): how much of the NetCrafter win
/// survives scale-out fabrics? Each row is one fabric with its geometry
/// (mean cross-cluster hop count, edge-switch oversubscription ratio)
/// next to the per-workload baseline→NetCrafter speedups and their
/// geomean, so the benefit can be read against hop count and
/// oversubscription directly.
pub fn extension_topology_sweep(r: &Runner) -> Table {
    let mut t = Table::new(
        "Extension: NetCrafter speedup vs fabric topology",
        vec![
            "Fabric", "GPUs", "Switches", "Hops", "Oversub", "GUPS", "SPMV", "PR", "Geomean",
        ],
    );
    for (tag, cfg) in topology_sweep_points(r) {
        let topo = Topology::new(&cfg.topology);
        let label = if tag.is_empty() {
            "mesh".to_owned()
        } else {
            tag.trim_start_matches("topo-").to_owned()
        };
        let mut cells = vec![
            label,
            cfg.topology.total_gpus().to_string(),
            cfg.topology.num_switches().to_string(),
            f2(topo.mean_cross_hops()),
            f2(cfg.topology.oversubscription()),
        ];
        let mut speedups = Vec::new();
        for w in TOPOLOGY_WORKLOADS {
            let base = r.run_job(&topology_job(r, w, SystemVariant::Baseline, cfg, &tag));
            let nc = r.run_job(&topology_job(r, w, SystemVariant::NetCrafter, cfg, &tag));
            let s = base.exec_cycles as f64 / nc.exec_cycles as f64;
            speedups.push(s);
            cells.push(f2(s));
        }
        cells.push(f2(geomean(&speedups)));
        t.row(cells);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_exactly() {
        let t = table1();
        // Rows: kind, occupied, required, padded, flits.
        let expect = [
            ("Read Req", "16", "12", "4", "1"),
            ("Write Req", "80", "76", "4", "5"),
            ("Page Table Req", "16", "12", "4", "1"),
            ("Read Rsp", "80", "68", "12", "5"),
            ("Write Rsp", "16", "4", "12", "1"),
            ("Page Table Rsp", "16", "12", "4", "1"),
        ];
        for (row, (kind, occ, req, pad, flits)) in t.rows.iter().zip(expect) {
            assert_eq!(row[0], kind);
            assert_eq!(row[1], occ, "{kind} occupied");
            assert_eq!(row[2], req, "{kind} required");
            assert_eq!(row[3], pad, "{kind} padded");
            assert_eq!(row[4], flits, "{kind} flits");
        }
    }

    #[test]
    fn table3_lists_all_15() {
        let t = table3();
        assert_eq!(t.rows.len(), 15);
        assert_eq!(t.rows[0][0], "GUPS");
        assert_eq!(t.rows[14][0], "RNET18");
    }

    #[test]
    fn all_ids_dispatch() {
        // Static tables dispatch without a runner doing real work.
        let r = Runner::quick();
        for id in ["table1", "table3"] {
            let t = generate(id, &r);
            assert!(!t.rows.is_empty());
        }
        assert_eq!(all_ids().len(), 22);
    }

    #[test]
    fn sweep_jobs_enumerate_every_id() {
        let r = Runner::quick();
        for id in all_ids() {
            let jobs = sweep_jobs(id, &r);
            match id {
                "table1" | "table3" | "fig17" => assert!(jobs.is_empty(), "{id}"),
                _ => assert!(!jobs.is_empty(), "{id} should have sweep jobs"),
            }
        }
        assert_eq!(sweep_jobs("fig14", &r).len(), 15 * 5);
        assert_eq!(sweep_jobs("fig22", &r).len(), 15 * 6 * 2);
    }

    #[test]
    fn prewarm_covers_generator_runs() {
        let r = Runner::quick().with_jobs(2);
        let jobs = sweep_jobs("fig3", &r);
        r.sweep(&jobs);
        let before = r.runs_completed();
        let t = generate("fig3", &r);
        assert_eq!(
            r.runs_completed(),
            before,
            "sweep covered every run fig3 makes"
        );
        assert_eq!(t.rows.len(), 15 + 2);
    }

    /// One real end-to-end figure at quick scale: Figure 3 on a reduced
    /// workload set would still take seconds; instead verify fig3 shape
    /// properties using the quick runner on two workloads by calling the
    /// underlying pieces.
    #[test]
    fn quick_fig_pipeline_works() {
        let r = Runner::quick();
        let base = r.run(Workload::Gups, SystemVariant::Baseline);
        let ideal = r.run(Workload::Gups, SystemVariant::Ideal);
        assert!(ideal.exec_cycles <= base.exec_cycles);
        assert!(base.inter_utilization() > 0.0);
    }
}
