//! PDES scaling microbench: per-core efficiency of the parallel
//! scheduler under dense and sparse cross-domain traffic.
//!
//! ```text
//! pdes_scaling [OUT.json] [--reps N] [--threads LIST]
//! ```
//!
//! CI's container is single-core, so it can assert determinism but not
//! speedup; this bin exists so any multicore host can verify the
//! `--threads 4` ≥ 2× goal. For each traffic profile (dense = GUPS, a
//! uniform all-to-all flit storm; sparse = BS, mostly GPU-local work)
//! it times the same simulation at each thread count (default 1, 2, 4),
//! takes the best of `--reps` runs (default 3), checks that the
//! simulated cycle count is bit-identical across thread counts, and
//! writes a JSON artifact with per-thread-count throughput, speedup
//! over the single-thread run, and per-core efficiency
//! (`speedup / threads`). The exit code is always 0 — the artifact is
//! informational; `goal_2x_at_4_threads` is only meaningful when
//! `host_cores >= 4`.

use std::time::Instant;

use netcrafter_multigpu::{Experiment, SystemVariant};
use netcrafter_sim::trace::{json, json_string};
use netcrafter_workloads::Workload;

fn usage() -> ! {
    eprintln!("usage: pdes_scaling [OUT.json] [--reps N] [--threads LIST (e.g. 1,2,4)]");
    std::process::exit(2);
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

struct Profile {
    name: &'static str,
    workload: Workload,
}

/// Dense saturates every inter-domain link (the asymmetric-epoch win
/// case); sparse leaves domains mostly independent (the lookahead win
/// case). Together they bracket the scheduler's operating range.
const PROFILES: [Profile; 2] = [
    Profile {
        name: "dense",
        workload: Workload::Gups,
    },
    Profile {
        name: "sparse",
        workload: Workload::Bs,
    },
];

struct Point {
    threads: usize,
    exec_cycles: u64,
    best_wall: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
    }
    let out_path = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "pdes_scaling.json".into());
    let reps: usize = flag_value(&args, "--reps")
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
        .max(1);
    let threads: Vec<usize> = flag_value(&args, "--threads").map_or_else(
        || vec![1, 2, 4],
        |v| {
            v.split(',')
                .map(|t| t.trim().parse().unwrap_or_else(|_| usage()))
                .collect()
        },
    );
    if threads.is_empty() || threads[0] != 1 {
        eprintln!("pdes_scaling: --threads must start with 1 (the efficiency anchor)");
        std::process::exit(2);
    }
    let host_cores = std::thread::available_parallelism().map_or(1, usize::from);

    let mut profile_blocks = String::new();
    for profile in &PROFILES {
        // Full-size scheduler work: the default experiment scale (8-CU
        // GPUs, Scale::small) keeps each run sub-second while leaving
        // enough per-epoch work for the barrier cost to matter.
        let exp = Experiment::new(profile.workload, SystemVariant::NetCrafter);
        let mut points: Vec<Point> = Vec::new();
        for &t in &threads {
            let run = exp.clone().with_threads(t);
            let mut exec_cycles = 0;
            let mut best_wall = f64::INFINITY;
            for _ in 0..reps {
                let t0 = Instant::now();
                let r = run.run();
                best_wall = best_wall.min(t0.elapsed().as_secs_f64());
                exec_cycles = r.exec_cycles;
            }
            points.push(Point {
                threads: t,
                exec_cycles,
                best_wall,
            });
        }
        // Determinism gate: thread count must never change the simulation.
        for p in &points[1..] {
            assert_eq!(
                p.exec_cycles, points[0].exec_cycles,
                "{}: --threads {} diverged from the single-thread run",
                profile.name, p.threads
            );
        }

        let base_rate = points[0].exec_cycles as f64 / points[0].best_wall.max(1e-9);
        eprintln!(
            "{} ({:?}, {} cycles):",
            profile.name, profile.workload, points[0].exec_cycles
        );
        let mut rows = String::new();
        let mut goal_met = false;
        for p in &points {
            let rate = p.exec_cycles as f64 / p.best_wall.max(1e-9);
            let speedup = rate / base_rate.max(1e-9);
            let efficiency = speedup / p.threads as f64;
            if p.threads >= 4 && speedup >= 2.0 {
                goal_met = true;
            }
            eprintln!(
                "  threads {:>2}: {:>12.0} cycles/s  speedup {speedup:>5.2}x  \
                 efficiency {:>5.1}%",
                p.threads,
                rate,
                100.0 * efficiency
            );
            if !rows.is_empty() {
                rows.push_str(",\n        ");
            }
            rows.push_str(&format!(
                "{{\"threads\":{},\"wall_seconds\":{:.4},\"cycles_per_sec\":{:.0},\
                 \"speedup\":{speedup:.3},\"efficiency\":{efficiency:.3}}}",
                p.threads, p.best_wall, rate
            ));
        }
        if !profile_blocks.is_empty() {
            profile_blocks.push_str(",\n    ");
        }
        profile_blocks.push_str(&format!(
            "{{\n      \"traffic\": {},\n      \"workload\": {},\n      \
             \"exec_cycles\": {},\n      \"goal_2x_at_4_threads\": {goal_met},\n      \
             \"points\": [\n        {rows}\n      ]\n    }}",
            json_string(profile.name),
            json_string(profile.workload.abbrev()),
            points[0].exec_cycles
        ));
    }

    let report = format!(
        "{{\n  \"schema\": 1,\n  \"host_cores\": {host_cores},\n  \
         \"reps\": {reps},\n  \"profiles\": [\n    {profile_blocks}\n  ]\n}}\n"
    );
    json::parse(&report).expect("emitted report is valid JSON");
    std::fs::write(&out_path, &report).unwrap_or_else(|e| {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    if host_cores < 4 {
        eprintln!(
            "pdes_scaling: host has {host_cores} core(s) — speedup numbers are not \
             meaningful here; run on a >= 4-core host to check the 2x goal"
        );
    }
    eprintln!("pdes_scaling: written to {out_path}");
}
