//! Regenerates the paper's tables and figures.
//!
//! ```text
//! figures [--quick] [--verbose] <id>... | all
//! ```
//!
//! Ids: table1, table3, fig3, fig4, fig5, fig6, fig7, fig8, fig9, fig12,
//! fig14, fig15, fig16, fig17, fig18, fig19, fig20, fig21, fig22.

use std::time::Instant;

use netcrafter_bench::{figures, Runner};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let big = args.iter().any(|a| a == "--big");
    let verbose = args.iter().any(|a| a == "--verbose");
    let mut ids: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .collect();
    if ids.is_empty() || ids.iter().any(|i| i == "all") {
        ids = figures::all_ids().iter().map(|s| s.to_string()).collect();
    }
    for id in &ids {
        if !figures::all_ids().contains(&id.as_str()) {
            eprintln!("unknown figure id {id:?}; known: {:?}", figures::all_ids());
            std::process::exit(2);
        }
    }

    let mut runner = if quick { Runner::quick() } else { Runner::paper() };
    if big {
        // Closer to the paper's 64-CU GPUs: 16 CUs with doubled inputs.
        // Expect a full `all` pass to take tens of minutes.
        runner.base_cfg.cus_per_gpu = 16;
        runner.scale.ctas *= 2;
        runner.scale.mem_ops_per_wave *= 2;
    }
    runner.verbose = verbose;
    println!(
        "# NetCrafter figure regeneration ({} scale)\n",
        if quick { "quick" } else if big { "big" } else { "paper" }
    );
    let t0 = Instant::now();
    for id in &ids {
        let t = Instant::now();
        let table = figures::generate(id, &runner);
        println!("{table}");
        eprintln!("[{id} done in {:.1?}; {} runs cached]", t.elapsed(), runner.runs_completed());
    }
    eprintln!("[total {:.1?}]", t0.elapsed());
}
