//! Regenerates the paper's tables and figures.
//!
//! ```text
//! figures [--quick] [--big] [--verbose] [--jobs N] [--threads N]
//!         [--cache-dir DIR] [--checkpoint-at CYCLE] [--checkpoint-dir DIR]
//!         [--restore-from FILE] [--trace FILE] [--timeseries FILE]
//!         [--trace-filter SPEC] [--sample-window N] [--legacy-scheduler]
//!         [--warmup CYCLES] [--no-prefix-share]
//!         <id>... | all
//! ```
//!
//! Ids: table1, table3, fig3, fig4, fig5, fig6, fig7, fig8, fig9, fig12,
//! fig14, fig15, fig16, fig17, fig18, fig19, fig20, fig21, fig22,
//! ablation, scaling.
//!
//! `--jobs N` resolves the figures' simulations on N worker threads;
//! `--threads N` runs each simulation's cluster domains on N worker
//! threads (the conservative parallel scheduler); `--cache-dir DIR`
//! persists every result so a re-run only simulates configurations it
//! has never seen. All three leave the printed tables byte-identical to
//! a sequential, uncached run.
//!
//! `--trace FILE` / `--timeseries FILE` re-run the *first* simulation of
//! the first requested figure with observability on and write a
//! Chrome-trace JSON event trace / per-link time-series JSONL. See the
//! `simulate` binary for the filter syntax.
//!
//! `--checkpoint-dir DIR` warm-starts every sweep simulation from the
//! longest cached prefix snapshot and persists any new checkpoint taken
//! via `--checkpoint-at CYCLE`; `--restore-from FILE` resumes the traced
//! re-run from a specific snapshot. All checkpointed paths stay
//! byte-identical to uninterrupted runs.
//!
//! `--warmup CYCLES` keeps every NetCrafter policy knob inert until the
//! given cycle, which lets the sweep share one simulated warmup prefix
//! across all policy variants of a workload (in-memory snapshot forks;
//! DESIGN.md §3.7). `--no-prefix-share` disables the sharing while
//! keeping the warmup semantics — output stays byte-identical, only
//! host-side wall-clock changes.

use std::time::Instant;

use netcrafter_bench::traceio::TRACE_VALUE_FLAGS;
use netcrafter_bench::{figures, stats_report, Runner, TraceArgs};
use netcrafter_multigpu::CheckpointPlan;

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Must run before any simulation; the printed tables are identical
    // under both schedulers (CI diffs them), only host speed changes.
    if args.iter().any(|a| a == "--legacy-scheduler") {
        netcrafter_sim::set_default_scheduler(netcrafter_sim::SchedulerMode::Legacy);
    }
    let quick = args.iter().any(|a| a == "--quick");
    let big = args.iter().any(|a| a == "--big");
    let verbose = args.iter().any(|a| a == "--verbose");
    let jobs: usize = flag_value(&args, "--jobs").map_or(1, |v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("--jobs expects a positive integer, got {v:?}");
            std::process::exit(2);
        })
    });
    let threads: usize = flag_value(&args, "--threads").map_or(1, |v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("--threads expects a positive integer, got {v:?}");
            std::process::exit(2);
        })
    });
    let cache_dir = flag_value(&args, "--cache-dir");
    let checkpoint_at: Option<u64> = flag_value(&args, "--checkpoint-at").map(|v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("--checkpoint-at expects a cycle count, got {v:?}");
            std::process::exit(2);
        })
    });
    let checkpoint_dir = flag_value(&args, "--checkpoint-dir");
    let restore_path = flag_value(&args, "--restore-from");
    let warmup: Option<u64> = flag_value(&args, "--warmup").map(|v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("--warmup expects a cycle count, got {v:?}");
            std::process::exit(2);
        })
    });
    let no_prefix_share = args.iter().any(|a| a == "--no-prefix-share");

    // Everything that is not a flag (or a flag's value) is a figure id.
    let mut ids: Vec<String> = Vec::new();
    let mut skip_next = false;
    for arg in &args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if arg == "--jobs"
            || arg == "--threads"
            || arg == "--cache-dir"
            || arg == "--checkpoint-at"
            || arg == "--checkpoint-dir"
            || arg == "--restore-from"
            || arg == "--warmup"
            || TRACE_VALUE_FLAGS.contains(&arg.as_str())
        {
            skip_next = true;
        } else if !arg.starts_with("--") {
            ids.push(arg.clone());
        }
    }
    let trace_args = TraceArgs::parse(&args).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    if ids.is_empty() || ids.iter().any(|i| i == "all") {
        ids = figures::all_ids().iter().map(ToString::to_string).collect();
    }
    for id in &ids {
        if !figures::all_ids().contains(&id.as_str()) {
            eprintln!("unknown figure id {id:?}; known: {:?}", figures::all_ids());
            std::process::exit(2);
        }
    }

    let mut runner = if quick {
        Runner::quick()
    } else {
        Runner::paper()
    };
    if big {
        // Closer to the paper's 64-CU GPUs: 16 CUs with doubled inputs.
        // Expect a full `all` pass to take tens of minutes.
        runner.base_cfg.cus_per_gpu = 16;
        runner.scale.ctas *= 2;
        runner.scale.mem_ops_per_wave *= 2;
    }
    runner.verbose = verbose;
    runner = runner
        .with_jobs(jobs)
        .with_threads(threads)
        .with_prefix_share(!no_prefix_share);
    if let Some(w) = warmup {
        runner.base_cfg.netcrafter.warmup_cycles = w;
    }
    if let Some(dir) = &cache_dir {
        runner = runner.with_cache_dir(dir).unwrap_or_else(|e| {
            eprintln!("cannot open cache dir {dir}: {e}");
            std::process::exit(1);
        });
    }
    if let Some(at) = checkpoint_at {
        runner = runner.with_checkpoint_at(at);
    }
    if let Some(dir) = &checkpoint_dir {
        runner = runner.with_checkpoint_dir(dir).unwrap_or_else(|e| {
            eprintln!("cannot open checkpoint dir {dir}: {e}");
            std::process::exit(1);
        });
    }

    println!(
        "# NetCrafter figure regeneration ({} scale)\n",
        if quick {
            "quick"
        } else if big {
            "big"
        } else {
            "paper"
        }
    );
    let t0 = Instant::now();

    // Resolve every simulation the requested figures need in one parallel
    // sweep; the generators below then hit a warm memo, so stdout is
    // byte-identical regardless of worker count or cache state.
    let mut all_jobs = Vec::new();
    for id in &ids {
        all_jobs.extend(figures::sweep_jobs(id, &runner));
    }
    if !all_jobs.is_empty() {
        runner.sweep(&all_jobs);
        eprintln!(
            "[sweep: {} unique runs resolved in {:.1?}]",
            runner.runs_completed(),
            t0.elapsed()
        );
    }

    for id in &ids {
        let t = Instant::now();
        let table = figures::generate(id, &runner);
        println!("{table}");
        eprintln!(
            "[{id} done in {:.1?}; {} runs cached]",
            t.elapsed(),
            runner.runs_completed()
        );
    }
    eprintln!("[total {:.1?}]", t0.elapsed());
    eprint!("{}", stats_report(&runner.job_stats()));
    eprint!("{}", runner.prefix_stats().report());

    if trace_args.active() {
        let opts = trace_args.options().unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        });
        let job = ids
            .first()
            .and_then(|id| figures::sweep_jobs(id, &runner).into_iter().next())
            .unwrap_or_else(|| {
                eprintln!("--trace/--timeseries: requested figures run no simulations");
                std::process::exit(2);
            });
        eprintln!("[tracing {} …]", job.memo_key());
        let plan = CheckpointPlan {
            checkpoint_at,
            restore_from: restore_path.as_ref().map(|path| {
                std::fs::read(path).unwrap_or_else(|e| {
                    eprintln!("cannot read snapshot {path}: {e}");
                    std::process::exit(1);
                })
            }),
            fork_at: None,
            fork: None,
        };
        let (run, data) = job
            .to_experiment()
            .run_traced_checkpointed(&opts, &plan)
            .unwrap_or_else(|e| {
                eprintln!("cannot restore snapshot: {e}");
                std::process::exit(1);
            });
        if run.resumed_at > 0 {
            eprintln!(
                "[restored snapshot: simulated from cycle {} instead of 0]",
                run.resumed_at
            );
        }
        if let Some((cycle, bytes)) = &run.snapshot {
            if let Some(store) = runner.checkpoint_store() {
                let path = store.path_for(&job.cache_key(), *cycle);
                store
                    .store(&job.cache_key(), *cycle, bytes)
                    .unwrap_or_else(|e| {
                        eprintln!("cannot write checkpoint {}: {e}", path.display());
                        std::process::exit(1);
                    });
                eprintln!(
                    "[checkpoint at cycle {cycle} written to {}]",
                    path.display()
                );
            }
        }
        trace_args.write(&data).unwrap_or_else(|e| {
            eprintln!("cannot write trace output: {e}");
            std::process::exit(1);
        });
    }
}
