//! CI perf-regression gate over the Figure 14 headline numbers and the
//! scale-out topology matrix.
//!
//! ```text
//! bench_gate emit OUT.json [--matrix fig14|topology|sweep] [--jobs N]
//!            [--threads N] [--reps N] [--no-prefix-share]
//! bench_gate check BASELINE.json CURRENT.json [--tolerance PCT]
//!            [--no-throughput-gate]
//! ```
//!
//! `emit` runs a quick-scale experiment matrix and writes a JSON report:
//! per-run execution cycles, per-variant speedups over baseline, geomean
//! speedups, and the host simulation rate (aggregate plus per-run
//! `host_cycles_per_sec`). `--matrix fig14` (the default) is every
//! workload × the cumulative NetCrafter variants on the paper's 2×2
//! mesh; `--matrix topology` drives baseline vs full NetCrafter across
//! the fat-tree-8 and torus-8 scale-out fabrics, keying each run as
//! `WORKLOAD@FABRIC`. `--matrix sweep` exercises the prefix-sharing
//! sweep engine (DESIGN.md §3.7): three workloads × baseline + nine
//! policy variants under a 2800-cycle warmup window, with the runner's
//! in-memory snapshot forks on (unless `--no-prefix-share`); its report
//! carries an extra `prefix` block — host `wall_ms` and `jobs_per_sec`
//! (informational) plus the deterministic `prefix_hit_ratio`, which IS
//! gated. The simulator is deterministic, so
//! cycles and speedups are exactly reproducible; `check` compares two
//! reports and fails (exit 1) with a readable diff when any gated number
//! drifts beyond `--tolerance` percent (default 0, i.e. exact). The
//! per-run cycles-per-second rates vary with the host and are reported
//! but never gated; the aggregate `cycles_per_sec` is *soft*-gated —
//! a regression of more than 25% vs the baseline fails the check, and
//! `--no-throughput-gate` downgrades that to a warning on noisy
//! machines. To keep that soft gate out of the noise floor, `emit`
//! times the sweep over `--reps` repetitions (default 3) and records
//! the *median* rate as `cycles_per_sec`, with every repetition's rate
//! kept in `rate_reps` and the min-to-max spread in `rate_spread_pct`.
//! Independently of the regression gate, both `emit` and `check` print
//! the distance to the committed aspirational `target_cycles_per_sec`
//! (never gated — it tracks the host-speed goal, not the floor).
//! `--legacy-scheduler` runs the matrix under the legacy
//! tick-everything engine scheduler (the numbers must not change);
//! `--threads N` runs each simulation on N domain worker threads
//! (ditto).
//!
//! An intentional model change therefore requires re-committing the
//! baseline: `cargo run --release -p netcrafter-bench --bin bench_gate --
//! emit ci/BENCH_fig14.baseline.json`.

use std::time::Instant;

use netcrafter_bench::{
    figures::{topology_job, TOPOLOGY_WORKLOADS},
    geomean, Runner,
};
use netcrafter_multigpu::{JobSpec, SystemVariant};
use netcrafter_proto::SystemConfig;
use netcrafter_sim::trace::{json, json_string};
use netcrafter_workloads::Workload;

/// Aspirational host-throughput target (cycles/s on the quick fig14
/// matrix). Never gated: `emit` stamps it into the report and both
/// `emit` and `check` print the distance to it, so the remaining gap
/// is visible in every CI log. Raise it when it is met — it tracks the
/// ROADMAP's raw-host-speed goal, not the regression floor.
const TARGET_CYCLES_PER_SEC: f64 = 1_000_000.0;

/// The cumulative Figure 14 variants, in presentation order.
const VARIANTS: [SystemVariant; 4] = [
    SystemVariant::StitchPool {
        window: 32,
        selective: true,
    },
    SystemVariant::StitchTrim,
    SystemVariant::NetCrafter,
    SystemVariant::SectorCache,
];

fn usage() -> ! {
    eprintln!(
        "usage: bench_gate emit OUT.json [--matrix fig14|topology|sweep] [--jobs N] \
         [--threads N] [--reps N] [--no-prefix-share] [--legacy-scheduler]\n\
         \u{20}      bench_gate check BASELINE.json CURRENT.json [--tolerance PCT] \
         [--no-throughput-gate]"
    );
    std::process::exit(2);
}

/// One gated run of an emit matrix: the JSON identity keys (`workload`
/// may embed a fabric name) plus the job that produces its numbers.
/// `speedup_base` rows anchor the speedups of the non-base rows sharing
/// their `workload` key.
struct Cell {
    workload: String,
    variant: String,
    job: JobSpec,
    speedup_base: bool,
}

/// The Figure 14 matrix: every workload × baseline + the cumulative
/// NetCrafter variants, all on the runner's 2×2 mesh.
fn fig14_cells(r: &Runner) -> Vec<Cell> {
    let mut cells = Vec::new();
    for w in Workload::ALL {
        for v in std::iter::once(SystemVariant::Baseline).chain(VARIANTS) {
            cells.push(Cell {
                workload: w.abbrev().to_owned(),
                variant: v.label(),
                job: r.job(w, v),
                speedup_base: v == SystemVariant::Baseline,
            });
        }
    }
    cells
}

/// The scale-out matrix: baseline vs full NetCrafter on the fat-tree-8
/// and torus-8 fabrics (the figure's workload subset), keyed
/// `WORKLOAD@FABRIC` so the gate distinguishes fabrics.
fn topology_cells(r: &Runner) -> Vec<Cell> {
    let mut cells = Vec::new();
    for (name, preset) in [
        ("fat-tree-8", SystemConfig::fat_tree_8()),
        ("torus-8", SystemConfig::torus_8()),
    ] {
        let mut cfg = r.base_cfg;
        cfg.topology = preset.topology;
        let tag = format!("topo-{name}");
        for w in TOPOLOGY_WORKLOADS {
            for v in [SystemVariant::Baseline, SystemVariant::NetCrafter] {
                cells.push(Cell {
                    workload: format!("{}@{name}", w.abbrev()),
                    variant: v.label(),
                    job: topology_job(r, w, v, cfg, &tag),
                    speedup_base: v == SystemVariant::Baseline,
                });
            }
        }
    }
    cells
}

/// Warmup window (cycles) of the `sweep` matrix: late enough that every
/// prefix covers most of a quick-scale run (the shortest run executes
/// ~3100 cycles), early enough that every run is still going when the
/// knobs activate.
const SWEEP_WARMUP: u64 = 2_800;

/// The prefix-sharing sweep matrix: three bandwidth-sensitive workloads
/// × baseline + nine policy variants, all under a [`SWEEP_WARMUP`]-cycle
/// warmup window. The seven full-line variants share one warmup prefix
/// per workload and the two trimming variants a second (trimming changes
/// L1 fills from cycle 0, so it keys the prefix); baseline has no knob
/// to delay and runs cold. Each group's representative runs cold and
/// forks in flight, so 21 of the 30 runs fork — a deterministic
/// prefix-hit ratio of 0.7.
fn sweep_cells(r: &Runner) -> Vec<Cell> {
    const SWEEP_VARIANTS: [SystemVariant; 9] = [
        SystemVariant::StitchOnly,
        SystemVariant::SeqOnly,
        SystemVariant::DataPrio,
        SystemVariant::StitchPool {
            window: 16,
            selective: true,
        },
        SystemVariant::StitchPool {
            window: 32,
            selective: true,
        },
        SystemVariant::StitchPool {
            window: 64,
            selective: true,
        },
        SystemVariant::StitchPool {
            window: 32,
            selective: false,
        },
        SystemVariant::StitchTrim,
        SystemVariant::NetCrafter,
    ];
    let mut cells = Vec::new();
    for w in [Workload::Gups, Workload::Spmv, Workload::Pr] {
        for v in std::iter::once(SystemVariant::Baseline).chain(SWEEP_VARIANTS) {
            cells.push(Cell {
                workload: w.abbrev().to_owned(),
                variant: v.label(),
                job: r.job(w, v),
                speedup_base: v == SystemVariant::Baseline,
            });
        }
    }
    cells
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--legacy-scheduler") {
        netcrafter_sim::set_default_scheduler(netcrafter_sim::SchedulerMode::Legacy);
    }
    match args.first().map(String::as_str) {
        Some("emit") => emit(&args[1..]),
        Some("check") => check(&args[1..]),
        _ => usage(),
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn emit(args: &[String]) -> ! {
    let out_path = args.first().filter(|a| !a.starts_with("--")).cloned();
    let Some(out_path) = out_path else { usage() };
    let jobs: usize = flag_value(args, "--jobs")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let threads: usize = flag_value(args, "--threads")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let reps: usize = flag_value(args, "--reps")
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
        .max(1);
    let matrix_name = flag_value(args, "--matrix").unwrap_or_else(|| "fig14".into());
    let matrix: fn(&Runner) -> Vec<Cell> = match matrix_name.as_str() {
        "fig14" => fig14_cells,
        "topology" => topology_cells,
        "sweep" => sweep_cells,
        other => {
            eprintln!("bench_gate: unknown matrix {other:?} (fig14 | topology | sweep)");
            std::process::exit(2);
        }
    };
    let sweep_matrix = matrix_name == "sweep";
    let no_prefix_share = args.iter().any(|a| a == "--no-prefix-share");
    // The sweep matrix configures its warmup window *before* cells are
    // built: each JobSpec snapshots the runner's base config, and the
    // warmup is part of the job's physical identity.
    let mk_runner = || {
        let mut r = Runner::quick().with_jobs(jobs).with_threads(threads);
        if sweep_matrix {
            r.base_cfg.netcrafter.warmup_cycles = SWEEP_WARMUP;
            r = r.with_prefix_share(!no_prefix_share);
        }
        r
    };

    // Host throughput is noisy, so the sweep is timed `reps` times on
    // fresh (memo-cold) runners and the gate uses the median. The first
    // repetition's runner also supplies the deterministic numbers below.
    let runner = mk_runner();
    let cells = matrix(&runner);
    let jobs_list: Vec<JobSpec> = cells.iter().map(|c| c.job.clone()).collect();
    let mut walls = Vec::with_capacity(reps);
    let t0 = Instant::now();
    runner.sweep(&jobs_list);
    walls.push(t0.elapsed().as_secs_f64());
    for _ in 1..reps {
        let rep = mk_runner();
        let rep_jobs: Vec<JobSpec> = matrix(&rep).into_iter().map(|c| c.job).collect();
        let t = Instant::now();
        rep.sweep(&rep_jobs);
        walls.push(t.elapsed().as_secs_f64());
    }
    let median = |xs: &[f64]| -> f64 {
        let mut sorted = xs.to_vec();
        sorted.sort_by(f64::total_cmp);
        let mid = sorted.len() / 2;
        if sorted.len() % 2 == 1 {
            sorted[mid]
        } else {
            (sorted[mid - 1] + sorted[mid]) / 2.0
        }
    };
    let wall = median(&walls);

    // Per-run host throughput (informational, never gated): the sweep
    // resolves each unique job exactly once, so its stat is the run's.
    let stats = runner.job_stats();
    let host_rate = |key: &str| -> f64 {
        stats
            .iter()
            .find(|s| s.memo_key == key)
            .map_or(0.0, netcrafter_bench::JobStat::cycles_per_sec)
    };

    // Cells are ordered with each group's baseline first, so the base
    // cycles for a `workload` key are always known before its speedup
    // rows; geomean columns keep first-seen variant order (the VARIANTS
    // order for fig14).
    let mut runs = String::new();
    let mut speedups = String::new();
    let mut total_cycles = 0u64;
    let mut base_cycles: std::collections::HashMap<&str, u64> = std::collections::HashMap::new();
    let mut variant_order: Vec<&str> = Vec::new();
    let mut per_variant: std::collections::HashMap<&str, Vec<f64>> =
        std::collections::HashMap::new();
    for cell in &cells {
        let r = runner.run_job(&cell.job);
        total_cycles += r.exec_cycles;
        if !runs.is_empty() {
            runs.push_str(",\n    ");
        }
        runs.push_str(&format!(
            "{{\"workload\":{},\"variant\":{},\"exec_cycles\":{},\
             \"host_cycles_per_sec\":{:.0}}}",
            json_string(&cell.workload),
            json_string(&cell.variant),
            r.exec_cycles,
            host_rate(&cell.job.memo_key()),
        ));
        if cell.speedup_base {
            base_cycles.insert(cell.workload.as_str(), r.exec_cycles);
        } else {
            let base = base_cycles[cell.workload.as_str()];
            let s = base as f64 / r.exec_cycles as f64;
            if !variant_order.contains(&cell.variant.as_str()) {
                variant_order.push(cell.variant.as_str());
            }
            per_variant
                .entry(cell.variant.as_str())
                .or_default()
                .push(s);
            if !speedups.is_empty() {
                speedups.push_str(",\n    ");
            }
            speedups.push_str(&format!(
                "{{\"workload\":{},\"variant\":{},\"speedup\":{:.6}}}",
                json_string(&cell.workload),
                json_string(&cell.variant),
                s,
            ));
        }
    }
    let mut geo = String::new();
    for v in &variant_order {
        if !geo.is_empty() {
            geo.push_str(",\n    ");
        }
        geo.push_str(&format!(
            "{{\"variant\":{},\"speedup\":{:.6}}}",
            json_string(v),
            geomean(&per_variant[v]),
        ));
    }
    let rate_reps: Vec<f64> = walls
        .iter()
        .map(|w| total_cycles as f64 / w.max(1e-9))
        .collect();
    let rate_reps_json = rate_reps
        .iter()
        .map(|r| format!("{r:.0}"))
        .collect::<Vec<_>>()
        .join(", ");
    let rate_min = rate_reps.iter().copied().fold(f64::INFINITY, f64::min);
    let rate_max = rate_reps.iter().copied().fold(0.0, f64::max);
    let rate_spread_pct = 100.0 * (rate_max - rate_min) / rate_max.max(1e-9);
    let rate = total_cycles as f64 / wall.max(1e-9);
    print_target_delta(rate);
    // Only the sweep matrix carries the prefix block; `wall_ms` and
    // `jobs_per_sec` describe the host (informational), while
    // `prefix_hit_ratio` is a deterministic function of the plan tree
    // and is gated exactly by `check`.
    let prefix_block = if sweep_matrix {
        let ps = runner.prefix_stats();
        eprint!("{}", ps.report());
        format!(
            ",\n  \"prefix\": {{\"wall_ms\": {:.0}, \"jobs_per_sec\": {:.1}, \
             \"prefix_hit_ratio\": {:.6}}}",
            ps.sweep_wall.as_secs_f64() * 1e3,
            ps.jobs_per_sec(),
            ps.hit_ratio(),
        )
    } else {
        String::new()
    };
    let report = format!(
        "{{\n  \"schema\": 1,\n  \"scale\": \"quick\",\n  \
         \"wall_seconds\": {wall:.3},\n  \"cycles_per_sec\": {:.0},\n  \
         \"target_cycles_per_sec\": {TARGET_CYCLES_PER_SEC:.0},\n  \
         \"rate_reps\": [{rate_reps_json}],\n  \
         \"rate_spread_pct\": {rate_spread_pct:.1},\n  \
         \"runs\": [\n    {runs}\n  ],\n  \"speedups\": [\n    {speedups}\n  ],\n  \
         \"geomean\": [\n    {geo}\n  ]{prefix_block}\n}}\n",
        total_cycles as f64 / wall.max(1e-9),
    );
    // Sanity: the report must parse with our own reader before it can gate.
    json::parse(&report).expect("emitted report is valid JSON");
    std::fs::write(&out_path, report).unwrap_or_else(|e| {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    eprintln!(
        "bench_gate: {} runs x {reps} rep(s), median {wall:.1}s \
         (rate spread {rate_spread_pct:.1}%), written to {out_path}",
        jobs_list.len()
    );
    std::process::exit(0);
}

/// Prints the non-fatal distance to [`TARGET_CYCLES_PER_SEC`]. The
/// `target` override lets `check` honour the target committed in the
/// baseline file rather than this binary's (possibly newer) constant.
fn print_target_delta_vs(rate: f64, target: f64) {
    let pct = 100.0 * (rate - target) / target.max(1e-9);
    let verdict = if rate >= target { "met" } else { "not yet met" };
    eprintln!(
        "bench_gate: aspirational target {target:.0} cycles/s: {verdict} \
         ({rate:.0} cycles/s, {pct:+.1}%; informational, never gated)"
    );
}

fn print_target_delta(rate: f64) {
    print_target_delta_vs(rate, TARGET_CYCLES_PER_SEC);
}

/// Flattens a report's gated numbers into `(key, value)` pairs.
fn gated_numbers(report: &json::Value) -> Result<Vec<(String, f64)>, String> {
    let mut out = Vec::new();
    for (section, value_key) in [("runs", "exec_cycles"), ("speedups", "speedup")] {
        let entries = report
            .get(section)
            .and_then(|v| v.as_arr())
            .ok_or_else(|| format!("report is missing the `{section}` array"))?;
        for entry in entries {
            let workload = entry
                .get("workload")
                .and_then(|v| v.as_str())
                .ok_or("entry missing `workload`")?;
            let variant = entry
                .get("variant")
                .and_then(|v| v.as_str())
                .ok_or("entry missing `variant`")?;
            let value = entry
                .get(value_key)
                .and_then(json::Value::as_f64)
                .ok_or_else(|| format!("entry missing `{value_key}`"))?;
            out.push((format!("{section}:{workload}|{variant}"), value));
        }
    }
    if let Some(entries) = report.get("geomean").and_then(|v| v.as_arr()) {
        for entry in entries {
            let variant = entry
                .get("variant")
                .and_then(|v| v.as_str())
                .ok_or("geomean entry missing `variant`")?;
            let value = entry
                .get("speedup")
                .and_then(json::Value::as_f64)
                .ok_or("geomean entry missing `speedup`")?;
            out.push((format!("geomean:{variant}"), value));
        }
    }
    // Sweep-matrix reports gate the plan-tree hit ratio too (its host
    // timings stay informational).
    if let Some(prefix) = report.get("prefix") {
        let value = prefix
            .get("prefix_hit_ratio")
            .and_then(json::Value::as_f64)
            .ok_or("prefix block missing `prefix_hit_ratio`")?;
        out.push(("prefix:hit_ratio".into(), value));
    }
    Ok(out)
}

fn load(path: &str) -> json::Value {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    });
    json::parse(&text).unwrap_or_else(|e| {
        eprintln!("{path}: invalid JSON: {e}");
        std::process::exit(1);
    })
}

fn check(args: &[String]) -> ! {
    let (Some(base_path), Some(cur_path)) = (
        args.first().filter(|a| !a.starts_with("--")),
        args.get(1).filter(|a| !a.starts_with("--")),
    ) else {
        usage()
    };
    let tolerance_pct: f64 = flag_value(args, "--tolerance").map_or(0.0, |v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("--tolerance expects a percentage, got {v:?}");
            std::process::exit(2);
        })
    });

    let base = load(base_path);
    let cur = load(cur_path);
    let base_nums = gated_numbers(&base).unwrap_or_else(|e| {
        eprintln!("{base_path}: {e}");
        std::process::exit(1);
    });
    let cur_nums = gated_numbers(&cur).unwrap_or_else(|e| {
        eprintln!("{cur_path}: {e}");
        std::process::exit(1);
    });
    let cur_map: std::collections::BTreeMap<&str, f64> =
        cur_nums.iter().map(|(k, v)| (k.as_str(), *v)).collect();

    let mut failures = Vec::new();
    for (key, want) in &base_nums {
        match cur_map.get(key.as_str()) {
            None => failures.push(format!("{key}: missing from {cur_path}")),
            Some(got) => {
                // Relative drift, with an epsilon for f64 formatting noise.
                let denom = want.abs().max(1e-12);
                let drift_pct = 100.0 * (got - want).abs() / denom;
                if drift_pct > tolerance_pct + 1e-6 {
                    failures.push(format!(
                        "{key}: baseline {want} vs current {got} ({drift_pct:+.2}% > ±{tolerance_pct}%)"
                    ));
                }
            }
        }
    }
    for (key, _) in &cur_nums {
        if !base_nums.iter().any(|(k, _)| k == key) {
            failures.push(format!(
                "{key}: not in baseline {base_path} (re-emit the baseline?)"
            ));
        }
    }

    // Soft throughput gate: the aggregate host rate may regress up to
    // 25% before the check fails (hosts are noisy; the simulated numbers
    // above are the hard gate). `--no-throughput-gate` keeps the message
    // but never fails on it.
    const MAX_RATE_REGRESSION_PCT: f64 = 25.0;
    let rate_gated = !args.iter().any(|a| a == "--no-throughput-gate");
    let rate = |v: &json::Value| v.get("cycles_per_sec").and_then(json::Value::as_f64);
    let mut rate_failure = None;
    if let (Some(b), Some(c)) = (rate(&base), rate(&cur)) {
        let drift_pct = 100.0 * (c - b) / b.max(1e-9);
        eprintln!(
            "bench_gate: host rate {c:.0} cycles/s vs baseline {b:.0} ({drift_pct:+.1}%, \
             gated at -{MAX_RATE_REGRESSION_PCT}%)",
        );
        let target = base
            .get("target_cycles_per_sec")
            .and_then(json::Value::as_f64)
            .unwrap_or(TARGET_CYCLES_PER_SEC);
        print_target_delta_vs(c, target);
        if drift_pct < -MAX_RATE_REGRESSION_PCT {
            let msg = format!(
                "host throughput regressed {:.1}% (> {MAX_RATE_REGRESSION_PCT}%): \
                 {c:.0} cycles/s vs baseline {b:.0}",
                -drift_pct,
            );
            if rate_gated {
                rate_failure = Some(msg);
            } else {
                eprintln!("bench_gate: WARNING (--no-throughput-gate): {msg}");
            }
        }
    }

    if failures.is_empty() && rate_failure.is_none() {
        eprintln!(
            "bench_gate: {} gated numbers match within ±{tolerance_pct}%",
            base_nums.len()
        );
        std::process::exit(0);
    }
    if !failures.is_empty() {
        eprintln!(
            "bench_gate: {} of {} gated numbers drifted:",
            failures.len(),
            base_nums.len()
        );
        for f in &failures {
            eprintln!("  {f}");
        }
    }
    if let Some(msg) = rate_failure {
        eprintln!("bench_gate: throughput gate failed:\n  {msg}");
    }
    eprintln!(
        "if this change is intentional, re-emit the baseline:\n  \
         cargo run --release -p netcrafter-bench --bin bench_gate -- emit {base_path}"
    );
    std::process::exit(1);
}
