//! General-purpose simulator CLI: run any workload on any configuration
//! and dump the metrics.
//!
//! ```text
//! simulate [--workload GUPS] [--variant netcrafter|all] [--cus 8]
//!          [--topology mesh:CxG|fat-tree:k=K|torus:XxYxZ]
//!          [--clusters 2] [--gpus-per-cluster 2]
//!          [--intra 128] [--inter 16] [--flit 16]
//!          [--scale tiny|small|paper] [--seed N]
//!          [--pool-window N] [--trim-granularity 4|8|16]
//!          [--jobs N] [--threads N] [--cache-dir DIR]
//!          [--checkpoint-at CYCLE] [--checkpoint-dir DIR]
//!          [--restore-from FILE]
//!          [--dump-metrics] [--csv FILE]
//!          [--trace FILE] [--timeseries FILE]
//!          [--trace-filter SPEC] [--sample-window N]
//!          [--legacy-scheduler]
//! ```
//!
//! `--variant all` sweeps every variant of the workload (in parallel
//! with `--jobs N`) and prints a comparison table. `--threads N` runs
//! each simulation's cluster domains on N worker threads under the
//! conservative parallel scheduler — output stays byte-identical.
//! `--cache-dir DIR` replays identical configurations from the
//! persistent result cache instead of re-simulating.
//!
//! `--trace FILE` records a Chrome-trace JSON event trace (load it in
//! `chrome://tracing` or Perfetto), optionally filtered by
//! `--trace-filter "comp=...;class=...;cycles=a..b"`. `--timeseries FILE`
//! records per-link bandwidth/occupancy curves as JSONL with
//! `--sample-window`-cycle buckets. Both force a fresh (uncached) run and
//! are ignored by `--variant all`.
//!
//! `--checkpoint-at CYCLE` pauses the simulation at the first epoch
//! barrier at or after CYCLE and snapshots the full engine state;
//! `--checkpoint-dir DIR` persists the snapshot there (and lets plain
//! runs warm-start from the longest cached prefix automatically).
//! `--restore-from FILE` resumes from a specific snapshot file instead.
//! Checkpoint → restore → continue is byte-identical to an
//! uninterrupted run — metrics, traces and time series alike.

use netcrafter_bench::{f2, pct, stats_report, Runner, Table, TraceArgs};
use netcrafter_multigpu::{CheckpointPlan, SystemVariant};
use netcrafter_proto::{SystemConfig, TopologyConfig};
use netcrafter_workloads::{Scale, Workload};

fn parse_variant(s: &str) -> Option<SystemVariant> {
    Some(match s.to_ascii_lowercase().as_str() {
        "baseline" => SystemVariant::Baseline,
        "ideal" => SystemVariant::Ideal,
        "netcrafter" => SystemVariant::NetCrafter,
        "stitch" | "stitching" => SystemVariant::StitchOnly,
        "trim" | "trimming" => SystemVariant::TrimOnly,
        "seq" | "sequencing" => SystemVariant::SeqOnly,
        "sector" | "sectorcache" => SystemVariant::SectorCache,
        "stitchtrim" => SystemVariant::StitchTrim,
        _ => return None,
    })
}

/// The variants `--variant all` compares, baseline first.
const ALL_VARIANTS: [SystemVariant; 8] = [
    SystemVariant::Baseline,
    SystemVariant::Ideal,
    SystemVariant::StitchOnly,
    SystemVariant::TrimOnly,
    SystemVariant::SeqOnly,
    SystemVariant::StitchTrim,
    SystemVariant::NetCrafter,
    SystemVariant::SectorCache,
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Scheduler selection must precede any engine construction; the
    // metrics are identical either way (CI enforces it), so this only
    // trades host speed for a simpler tick loop.
    if args.iter().any(|a| a == "--legacy-scheduler") {
        netcrafter_sim::set_default_scheduler(netcrafter_sim::SchedulerMode::Legacy);
    }
    let get = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let usage = || -> ! {
        eprintln!(
            "usage: simulate [--workload NAME] [--variant V|all] [--cus N] \
             [--topology mesh:CxG|fat-tree:k=K[:g=G][:cores=N]|torus:XxYxZ[:g=G]] [--clusters N] \
             [--gpus-per-cluster N] [--intra GBPS] [--inter GBPS] [--flit BYTES] \
             [--scale tiny|small|paper] [--seed N] [--pool-window N] \
             [--trim-granularity N] [--jobs N] [--threads N] [--cache-dir DIR] \
             [--checkpoint-at CYCLE] [--checkpoint-dir DIR] [--restore-from FILE] \
             [--dump-metrics] \
             [--trace FILE] [--timeseries FILE] [--trace-filter SPEC] [--sample-window N] \
             [--legacy-scheduler]\n\
             workloads: {:?}\n\
             variants: baseline ideal netcrafter stitch trim seq sector stitchtrim all",
            Workload::ALL.map(Workload::abbrev)
        );
        std::process::exit(2);
    };

    let workload_name = get("--workload").unwrap_or_else(|| "GUPS".into());
    let workload = Workload::ALL
        .into_iter()
        .find(|w| w.abbrev().eq_ignore_ascii_case(&workload_name))
        .unwrap_or_else(|| usage());
    let variant_name = get("--variant").unwrap_or_else(|| "baseline".into());
    let sweep_all = variant_name.eq_ignore_ascii_case("all");
    let variant = if sweep_all {
        SystemVariant::Baseline
    } else {
        parse_variant(&variant_name).unwrap_or_else(|| usage())
    };

    let mut cfg = SystemConfig::small(get("--cus").and_then(|v| v.parse().ok()).unwrap_or(8));
    // --topology replaces the whole fabric shape first; the individual
    // knobs below still override its fields afterwards.
    if let Some(spec) = get("--topology") {
        cfg.topology = TopologyConfig::parse_spec(&spec).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        });
    }
    if let Some(v) = get("--clusters") {
        cfg.topology.clusters = v.parse().unwrap_or_else(|_| usage());
    }
    if let Some(v) = get("--gpus-per-cluster") {
        cfg.topology.gpus_per_cluster = v.parse().unwrap_or_else(|_| usage());
    }
    if let Some(v) = get("--intra") {
        cfg.topology.intra_gbps = v.parse().unwrap_or_else(|_| usage());
    }
    if let Some(v) = get("--inter") {
        cfg.topology.inter_gbps = v.parse().unwrap_or_else(|_| usage());
    }
    if let Some(v) = get("--flit") {
        cfg.flit_bytes = v.parse().unwrap_or_else(|_| usage());
    }
    if let Some(v) = get("--pool-window") {
        cfg.netcrafter.pooling_window = v.parse().unwrap_or_else(|_| usage());
    }
    if let Some(v) = get("--trim-granularity") {
        cfg.trim_granularity = v.parse().unwrap_or_else(|_| usage());
    }
    let scale = match get("--scale").as_deref() {
        None | Some("small") => Scale::small(),
        Some("tiny") => Scale::tiny(),
        Some("paper") => Scale::paper(),
        Some(_) => usage(),
    };

    let mut runner = Runner::with_base(cfg, scale);
    runner.seed = get("--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0xC0FFEE);
    runner.max_cycles = 1_000_000_000;
    runner = runner.with_jobs(get("--jobs").and_then(|v| v.parse().ok()).unwrap_or(1));
    runner = runner.with_threads(get("--threads").and_then(|v| v.parse().ok()).unwrap_or(1));
    if let Some(dir) = get("--cache-dir") {
        runner = runner.with_cache_dir(&dir).unwrap_or_else(|e| {
            eprintln!("cannot open cache dir {dir}: {e}");
            std::process::exit(1);
        });
    }
    let checkpoint_at: Option<u64> =
        get("--checkpoint-at").map(|v| v.parse().unwrap_or_else(|_| usage()));
    let restore_path = get("--restore-from");
    if let Some(at) = checkpoint_at {
        runner = runner.with_checkpoint_at(at);
    }
    if let Some(dir) = get("--checkpoint-dir") {
        runner = runner.with_checkpoint_dir(&dir).unwrap_or_else(|e| {
            eprintln!("cannot open checkpoint dir {dir}: {e}");
            std::process::exit(1);
        });
    }

    if sweep_all {
        if restore_path.is_some() {
            eprintln!("--restore-from names one snapshot and cannot drive --variant all;");
            eprintln!("use --checkpoint-dir to warm-start a sweep instead");
            std::process::exit(2);
        }
        eprintln!(
            "sweeping {workload} across {} variants on {} worker(s) …",
            ALL_VARIANTS.len(),
            runner.jobs,
        );
        let jobs: Vec<_> = ALL_VARIANTS
            .iter()
            .map(|&v| runner.job(workload, v))
            .collect();
        let results = runner.sweep(&jobs);
        let base_cycles = results[0].exec_cycles;
        let mut t = Table::new(
            format!("{workload} across system variants"),
            vec![
                "Variant",
                "Cycles",
                "Speedup",
                "Link util",
                "Read lat",
                "L1 MPKI",
            ],
        );
        for (v, r) in ALL_VARIANTS.iter().zip(&results) {
            t.row(vec![
                v.label(),
                r.exec_cycles.to_string(),
                f2(base_cycles as f64 / r.exec_cycles as f64),
                pct(r.inter_utilization()),
                format!("{:.0}", r.inter_read_latency()),
                f2(r.l1_mpki()),
            ]);
        }
        println!("{t}");
        eprint!("{}", stats_report(&runner.job_stats()));
        return;
    }

    let trace_args = TraceArgs::parse(&args).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });

    eprintln!(
        "simulating {workload} / {} on {} clusters x {} GPUs x {} CUs …",
        variant.label(),
        runner.base_cfg.topology.clusters,
        runner.base_cfg.topology.gpus_per_cluster,
        runner.base_cfg.cus_per_gpu,
    );
    let r = if trace_args.active() || checkpoint_at.is_some() || restore_path.is_some() {
        // Checkpointed and traced runs drive the experiment directly:
        // both must actually simulate, not replay the result cache.
        let plan = CheckpointPlan {
            checkpoint_at,
            restore_from: restore_path.as_ref().map(|path| {
                std::fs::read(path).unwrap_or_else(|e| {
                    eprintln!("cannot read snapshot {path}: {e}");
                    std::process::exit(1);
                })
            }),
            fork_at: None,
            fork: None,
        };
        let job = runner.job(workload, variant);
        let exp = job.to_experiment();
        let snapshot_err = |e| -> ! {
            eprintln!("cannot restore snapshot: {e}");
            std::process::exit(1);
        };
        let (run, data) = if trace_args.active() {
            let opts = trace_args.options().unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(2);
            });
            let (run, data) = exp
                .run_traced_checkpointed(&opts, &plan)
                .unwrap_or_else(|e| snapshot_err(e));
            (run, Some(data))
        } else {
            let run = exp
                .run_checkpointed(&plan)
                .unwrap_or_else(|e| snapshot_err(e));
            (run, None)
        };
        if run.resumed_at > 0 {
            eprintln!(
                "restored snapshot: simulated from cycle {} instead of 0",
                run.resumed_at
            );
        }
        if let Some((cycle, bytes)) = &run.snapshot {
            match runner.checkpoint_store() {
                Some(store) => {
                    let path = store.path_for(&job.cache_key(), *cycle);
                    store
                        .store(&job.cache_key(), *cycle, bytes)
                        .unwrap_or_else(|e| {
                            eprintln!("cannot write checkpoint {}: {e}", path.display());
                            std::process::exit(1);
                        });
                    eprintln!("checkpoint at cycle {cycle} written to {}", path.display());
                }
                None => eprintln!(
                    "checkpoint at cycle {cycle} taken but discarded (no --checkpoint-dir)"
                ),
            }
        }
        if let Some(data) = &data {
            trace_args.write(data).unwrap_or_else(|e| {
                eprintln!("cannot write trace output: {e}");
                std::process::exit(1);
            });
        }
        std::sync::Arc::new(run.result)
    } else {
        runner.run(workload, variant)
    };

    println!(
        "workload             : {workload} ({})",
        workload.description()
    );
    println!("variant              : {}", variant.label());
    println!("execution cycles     : {}", r.exec_cycles);
    println!(
        "instructions         : {}",
        r.metrics.counter("total.cu.instructions")
    );
    println!(
        "memory ops           : {}",
        r.metrics.counter("total.cu.mem_ops")
    );
    println!(
        "inter-cluster flits  : {}",
        r.metrics.counter("net.inter.flits")
    );
    println!(
        "inter link util      : {:.1}%",
        100.0 * r.inter_utilization()
    );
    println!(
        "inter read latency   : {:.0} cycles",
        r.inter_read_latency()
    );
    println!("PTW byte share       : {:.1}%", 100.0 * r.ptw_byte_share());
    println!("L1 MPKI              : {:.2}", r.l1_mpki());
    println!(
        "stitched-away flits  : {:.1}%",
        100.0 * r.stitched_fraction()
    );
    println!(
        "trimmed responses    : {}",
        r.metrics.counter("total.trim.trimmed")
    );
    println!(
        "page-table walks     : {}",
        r.metrics.counter("total.gmmu.walks")
    );
    eprint!("{}", stats_report(&runner.job_stats()));

    if args.iter().any(|a| a == "--dump-metrics") {
        println!("\n--- all metrics ---\n{}", r.metrics);
    }
    if let Some(path) = get("--csv") {
        std::fs::write(&path, r.metrics.to_csv()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("metrics written to {path}");
    }
}
