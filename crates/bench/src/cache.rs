//! Persistent on-disk layer of the result cache.
//!
//! Each completed simulation is stored as one small text file under the
//! cache directory, named by the FNV-1a hash of the job's physical
//! [`cache key`](netcrafter_multigpu::JobSpec::cache_key):
//!
//! ```text
//! <cache-dir>/<fnv64 hex>.run
//! ```
//!
//! The file embeds the full cache key, so a (vanishingly unlikely) hash
//! collision or a stale file from an older simulator revision is detected
//! by string comparison and treated as a miss. The body is the
//! line-oriented `key = value` rendering of
//! [`RunResult`](netcrafter_multigpu::RunResult) — no serde, greppable,
//! and stable across platforms.
//!
//! Writes go through a uniquely named temp file followed by an atomic
//! rename, so concurrent sweep workers (or two processes sharing a cache
//! directory) never expose a torn file to readers.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use netcrafter_multigpu::RunResult;
use netcrafter_proto::fnv1a64;

/// Magic first line of every cache file; bump the version to invalidate
/// all prior entries after a format change.
const HEADER: &str = "netcrafter-run-cache v1";

/// Monotonic suffix so concurrent writers in one process get distinct
/// temp files.
static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// A directory of cached [`RunResult`]s keyed by physical job identity.
#[derive(Debug)]
pub struct DiskCache {
    dir: PathBuf,
}

impl DiskCache {
    /// Opens (creating if needed) a cache rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self { dir })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_for(&self, cache_key: &str) -> PathBuf {
        self.dir
            .join(format!("{:016x}.run", fnv1a64(cache_key.as_bytes())))
    }

    /// Cheap existence probe used by the sweep planner: `true` when a
    /// cache file for `cache_key` is present. A `true` here can still
    /// turn into a [`DiskCache::load`] miss (collision, corruption) —
    /// the planner only uses it to decide which jobs are worth grouping
    /// under a shared simulation prefix, where a rare false positive
    /// merely costs one cold run.
    pub fn contains(&self, cache_key: &str) -> bool {
        self.path_for(cache_key).exists()
    }

    /// Looks `cache_key` up; `None` on miss, hash collision, version
    /// mismatch or any corruption (all of which just mean re-simulate).
    pub fn load(&self, cache_key: &str) -> Option<RunResult> {
        let text = fs::read_to_string(self.path_for(cache_key)).ok()?;
        let mut lines = text.splitn(3, '\n');
        if lines.next()? != HEADER {
            return None;
        }
        if lines.next()?.strip_prefix("key = ")? != cache_key {
            return None;
        }
        RunResult::from_kv(lines.next()?)
    }

    /// Persists `result` under `cache_key` (atomically, via rename).
    pub fn store(&self, cache_key: &str, result: &RunResult) -> io::Result<()> {
        let body = format!("{HEADER}\nkey = {cache_key}\n{}", result.to_kv());
        let final_path = self.path_for(cache_key);
        let tmp = self.dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            TEMP_SEQ.fetch_add(1, Ordering::Relaxed),
        ));
        fs::write(&tmp, body)?;
        fs::rename(&tmp, final_path)
    }

    /// Number of cached results on disk.
    pub fn len(&self) -> usize {
        fs::read_dir(&self.dir).map_or(0, |it| {
            it.filter_map(Result::ok)
                .filter(|e| e.path().extension().is_some_and(|x| x == "run"))
                .count()
        })
    }

    /// Whether the cache holds no results.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A directory of engine snapshots used by the sweep runner's
/// warm-start: each file holds the paused state of one job's simulation
/// prefix, named by the FNV-1a hash of the job's physical cache key plus
/// the pause cycle:
///
/// ```text
/// <dir>/ckpt-<fnv64 hex>-<cycle>.bin
/// ```
///
/// A warm start picks the *largest* cached cycle for the key (the longest
/// shared prefix) and restores it; restore itself validates the versioned
/// snapshot header and every component name, so a stale or colliding file
/// fails loudly rather than silently corrupting a run.
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
}

impl CheckpointStore {
    /// Opens (creating if needed) a checkpoint store rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self { dir })
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn prefix_for(cache_key: &str) -> String {
        format!("ckpt-{:016x}-", fnv1a64(cache_key.as_bytes()))
    }

    /// The path a snapshot of `cache_key` paused at `cycle` is stored at.
    pub fn path_for(&self, cache_key: &str, cycle: u64) -> PathBuf {
        self.dir
            .join(format!("{}{cycle}.bin", Self::prefix_for(cache_key)))
    }

    /// Persists snapshot `bytes` of `cache_key` paused at `cycle`
    /// (atomically, via rename).
    pub fn store(&self, cache_key: &str, cycle: u64, bytes: &[u8]) -> io::Result<()> {
        let tmp = self.dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            TEMP_SEQ.fetch_add(1, Ordering::Relaxed),
        ));
        fs::write(&tmp, bytes)?;
        fs::rename(&tmp, self.path_for(cache_key, cycle))
    }

    /// The longest cached prefix for `cache_key`: the snapshot with the
    /// largest pause cycle, as `(cycle, bytes)`. `None` when the store
    /// holds no snapshot for the key.
    pub fn load_longest_prefix(&self, cache_key: &str) -> Option<(u64, Vec<u8>)> {
        let prefix = Self::prefix_for(cache_key);
        let best = fs::read_dir(&self.dir)
            .ok()?
            .filter_map(Result::ok)
            .filter_map(|e| {
                let name = e.file_name().into_string().ok()?;
                name.strip_prefix(&prefix)?
                    .strip_suffix(".bin")?
                    .parse::<u64>()
                    .ok()
            })
            .max()?;
        let bytes = fs::read(self.path_for(cache_key, best)).ok()?;
        Some((best, bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcrafter_proto::Metrics;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "netcrafter-cache-test-{}-{tag}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample() -> RunResult {
        let mut metrics = Metrics::new();
        metrics.add("net.inter.flits", 42);
        metrics.latency_mut("net.read").record(17);
        RunResult {
            exec_cycles: 12345,
            metrics,
        }
    }

    #[test]
    fn store_then_load_round_trips() {
        let dir = tempdir("round-trip");
        let cache = DiskCache::open(&dir).unwrap();
        assert!(cache.is_empty());
        assert!(cache.load("some-key").is_none());

        assert!(!cache.contains("some-key"));
        cache.store("some-key", &sample()).unwrap();
        assert_eq!(cache.len(), 1);
        assert!(cache.contains("some-key"));
        assert!(!cache.contains("other-key"));
        let back = cache.load("some-key").expect("hit");
        assert_eq!(back.exec_cycles, 12345);
        assert_eq!(back.metrics.counter("net.inter.flits"), 42);

        // A different key misses even though a file exists.
        assert!(cache.load("other-key").is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn key_mismatch_in_file_is_a_miss() {
        let dir = tempdir("mismatch");
        let cache = DiskCache::open(&dir).unwrap();
        cache.store("key-a", &sample()).unwrap();
        // Forge a collision: copy key-a's file onto key-b's expected path.
        let a = cache.path_for("key-a");
        let b = cache.path_for("key-b");
        fs::copy(&a, &b).unwrap();
        assert!(cache.load("key-b").is_none(), "embedded key must match");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_files_are_misses() {
        let dir = tempdir("corrupt");
        let cache = DiskCache::open(&dir).unwrap();
        fs::write(cache.path_for("k"), "not a cache file").unwrap();
        assert!(cache.load("k").is_none());
        fs::write(
            cache.path_for("k2"),
            format!("{HEADER}\nkey = k2\ncounter bad\n"),
        )
        .unwrap();
        assert!(cache.load("k2").is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_store_picks_longest_prefix() {
        let dir = tempdir("ckpt");
        let store = CheckpointStore::open(&dir).unwrap();
        assert!(store.load_longest_prefix("job-a").is_none());
        store.store("job-a", 1_000, b"early").unwrap();
        store.store("job-a", 50_000, b"late").unwrap();
        store.store("job-b", 99_999, b"other job").unwrap();
        let (cycle, bytes) = store.load_longest_prefix("job-a").expect("hit");
        assert_eq!(cycle, 50_000);
        assert_eq!(bytes, b"late");
        let _ = fs::remove_dir_all(&dir);
    }
}
