//! Shared CLI plumbing for the binaries' observability flags:
//! `--trace FILE`, `--timeseries FILE`, `--trace-filter SPEC` and
//! `--sample-window N` parse into a [`TraceArgs`], which turns into the
//! [`TraceOptions`] handed to [`Experiment::run_traced`] and writes the
//! recorded data to disk.
//!
//! [`Experiment::run_traced`]: netcrafter_multigpu::Experiment::run_traced

use netcrafter_multigpu::{TraceData, TraceOptions};
use netcrafter_sim::TraceConfig;

/// Default time-series bucket width when `--sample-window` is absent.
pub const DEFAULT_SAMPLE_WINDOW: u64 = 1000;

/// Parsed observability flags.
#[derive(Debug, Clone, Default)]
pub struct TraceArgs {
    /// `--trace FILE`: Chrome-trace JSON output path.
    pub trace_path: Option<String>,
    /// `--timeseries FILE`: per-link time-series JSONL output path.
    pub timeseries_path: Option<String>,
    /// `--trace-filter SPEC`: [`TraceConfig`] filter expression.
    pub filter: Option<String>,
    /// `--sample-window N`: time-series bucket width in cycles.
    pub sample_window: Option<u64>,
}

/// The flags that take a value (so argument scanners can skip it).
pub const TRACE_VALUE_FLAGS: [&str; 4] = [
    "--trace",
    "--timeseries",
    "--trace-filter",
    "--sample-window",
];

impl TraceArgs {
    /// Extracts the observability flags from a raw argument list.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when a flag's value is missing or
    /// unparsable.
    pub fn parse(args: &[String]) -> Result<TraceArgs, String> {
        let get = |flag: &str| -> Result<Option<String>, String> {
            match args.iter().position(|a| a == flag) {
                None => Ok(None),
                Some(i) => args
                    .get(i + 1)
                    .cloned()
                    .map(Some)
                    .ok_or_else(|| format!("{flag} expects a value")),
            }
        };
        let sample_window = match get("--sample-window")? {
            None => None,
            Some(v) => Some(v.parse::<u64>().ok().filter(|w| *w > 0).ok_or_else(|| {
                format!("--sample-window expects a positive cycle count, got {v:?}")
            })?),
        };
        Ok(TraceArgs {
            trace_path: get("--trace")?,
            timeseries_path: get("--timeseries")?,
            filter: get("--trace-filter")?,
            sample_window,
        })
    }

    /// True if any output was requested, i.e. a traced run is needed.
    pub fn active(&self) -> bool {
        self.trace_path.is_some() || self.timeseries_path.is_some()
    }

    /// The run options the flags describe: event tracing when `--trace`
    /// was given (filtered by `--trace-filter`), link sampling when
    /// `--timeseries` was given.
    ///
    /// # Errors
    ///
    /// Returns the [`TraceConfig::parse`] message on a bad filter.
    pub fn options(&self) -> Result<TraceOptions, String> {
        let config = if self.trace_path.is_some() {
            Some(match &self.filter {
                Some(spec) => TraceConfig::parse(spec)?,
                None => TraceConfig::default(),
            })
        } else {
            None
        };
        let sample_window = self
            .timeseries_path
            .is_some()
            .then(|| self.sample_window.unwrap_or(DEFAULT_SAMPLE_WINDOW));
        Ok(TraceOptions {
            config,
            sample_window,
        })
    }

    /// Writes the recorded data to the requested paths, reporting each
    /// file on stderr.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn write(&self, data: &TraceData) -> std::io::Result<()> {
        if let Some(path) = &self.trace_path {
            std::fs::write(path, data.trace.to_chrome_json())?;
            eprintln!(
                "trace: {} events on {} tracks written to {path}",
                data.trace.events.len(),
                data.trace.tracks.len(),
            );
        }
        if let Some(path) = &self.timeseries_path {
            std::fs::write(path, data.links_to_jsonl())?;
            eprintln!("timeseries: {} links written to {path}", data.links.len());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn parses_all_flags() {
        let a = TraceArgs::parse(&argv(&[
            "fig14",
            "--trace",
            "t.json",
            "--timeseries",
            "ts.jsonl",
            "--trace-filter",
            "class=flit",
            "--sample-window",
            "500",
        ]))
        .unwrap();
        assert!(a.active());
        assert_eq!(a.trace_path.as_deref(), Some("t.json"));
        assert_eq!(a.timeseries_path.as_deref(), Some("ts.jsonl"));
        assert_eq!(a.sample_window, Some(500));
        let opts = a.options().unwrap();
        assert!(opts.config.is_some());
        assert_eq!(opts.sample_window, Some(500));
    }

    #[test]
    fn absent_flags_mean_inactive() {
        let a = TraceArgs::parse(&argv(&["--quick", "fig14"])).unwrap();
        assert!(!a.active());
        let opts = a.options().unwrap();
        assert!(opts.config.is_none());
        assert!(opts.sample_window.is_none());
    }

    #[test]
    fn timeseries_without_window_uses_default() {
        let a = TraceArgs::parse(&argv(&["--timeseries", "ts.jsonl"])).unwrap();
        let opts = a.options().unwrap();
        assert_eq!(opts.sample_window, Some(DEFAULT_SAMPLE_WINDOW));
        assert!(opts.config.is_none(), "no --trace, no event tracing");
    }

    #[test]
    fn rejects_missing_value_and_bad_window() {
        assert!(TraceArgs::parse(&argv(&["--trace"])).is_err());
        assert!(TraceArgs::parse(&argv(&["--sample-window", "0"])).is_err());
        assert!(TraceArgs::parse(&argv(&["--sample-window", "x"])).is_err());
    }

    #[test]
    fn bad_filter_surfaces_parse_error() {
        let a = TraceArgs::parse(&argv(&[
            "--trace",
            "t.json",
            "--trace-filter",
            "class=nope",
        ]))
        .unwrap();
        assert!(a.options().is_err());
    }
}
