//! Integration tests for prefix-sharing sweeps: the plan tree, the
//! in-memory fork path, and its interaction with the persistent
//! `CheckpointStore` tier — in particular that a corrupt on-disk
//! snapshot degrades to a byte-identical cold run and that the forked
//! path never consumes the store at all.

use std::path::PathBuf;

use netcrafter_bench::{JobSource, Runner};
use netcrafter_multigpu::{JobSpec, SystemVariant};
use netcrafter_workloads::Workload;

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "netcrafter-prefix-sweep-test-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

const WARMUP: u64 = 400;

fn sweep_variants() -> [SystemVariant; 3] {
    [
        SystemVariant::NetCrafter,
        SystemVariant::StitchTrim,
        SystemVariant::Baseline,
    ]
}

fn jobs_for(r: &Runner) -> Vec<JobSpec> {
    sweep_variants()
        .iter()
        .map(|&v| r.job(Workload::Gups, v))
        .collect()
}

fn cold_reference() -> Vec<String> {
    let mut r = Runner::quick().with_prefix_share(false);
    r.base_cfg.netcrafter.warmup_cycles = WARMUP;
    r.sweep(&jobs_for(&r)).iter().map(|x| x.to_kv()).collect()
}

#[test]
fn truncated_store_snapshot_degrades_to_byte_identical_cold_sweep() {
    let dir = tempdir("truncated");
    let reference = cold_reference();

    // Take a *real* snapshot and truncate it: the store then holds bytes
    // that start like a valid snapshot but end mid-value — the harshest
    // corruption shape, because the header parses fine.
    let mut seed = Runner::quick().with_prefix_share(false);
    seed.base_cfg.netcrafter.warmup_cycles = WARMUP;
    let probe = seed.job(Workload::Gups, SystemVariant::NetCrafter);
    let genuine = probe
        .to_experiment()
        .run_prefix(WARMUP)
        .expect("prefix runs");
    let truncated = &genuine.bytes()[..genuine.bytes().len() / 2];

    // Prefix sharing off: every fresh job consults the store, hits the
    // truncated snapshot, warns, and falls back to a cold run.
    let mut r = Runner::quick()
        .with_prefix_share(false)
        .with_checkpoint_dir(&dir)
        .expect("checkpoint dir opens");
    r.base_cfg.netcrafter.warmup_cycles = WARMUP;
    let store = r.checkpoint_store().expect("store configured");
    for job in jobs_for(&r) {
        store
            .store(&job.cache_key(), WARMUP, truncated)
            .expect("writes");
    }
    let results = r.sweep(&jobs_for(&r));
    for (got, want) in results.iter().zip(&reference) {
        assert_eq!(&got.to_kv(), want, "fallback must match the cold run");
    }
    for s in r.job_stats() {
        assert_eq!(s.source, JobSource::Fresh);
        assert_eq!(s.resumed_at, 0, "corrupt snapshot cannot warm-start");
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn forked_path_never_consumes_the_corrupt_store() {
    let dir = tempdir("fork-immune");
    let reference = cold_reference();

    // Poison the store for every job key, then run a prefix-shared
    // sweep. Non-representative grouped jobs restore the in-memory fork
    // and must never touch the store: they resume mid-run (a
    // corrupt-store consultation would have forced resumed_at == 0 via
    // the cold fallback).
    let mut r = Runner::quick()
        .with_jobs(2)
        .with_checkpoint_dir(&dir)
        .expect("checkpoint dir opens");
    r.base_cfg.netcrafter.warmup_cycles = WARMUP;
    let store = r.checkpoint_store().expect("store configured");
    for job in jobs_for(&r) {
        store
            .store(&job.cache_key(), WARMUP, b"garbage, not a snapshot")
            .expect("writes");
    }
    let results = r.sweep(&jobs_for(&r));
    for (got, want) in results.iter().zip(&reference) {
        assert_eq!(&got.to_kv(), want, "forked results must match cold");
    }
    let stats = r.job_stats();
    let forked: Vec<_> = stats
        .iter()
        .filter(|s| s.source == JobSource::Forked)
        .collect();
    assert_eq!(
        forked.len(),
        1,
        "StitchTrim restores the NetCrafter representative's in-flight fork"
    );
    for s in &forked {
        assert!(
            s.resumed_at > 0 && s.resumed_at <= WARMUP,
            "forked job resumed at {} — it consulted the corrupt store",
            s.resumed_at
        );
    }
    // The representative and the ungrouped Baseline job *do* consult the
    // store, hit the garbage, and fall back cold — the representative
    // still captures its group's fork on the cold retry.
    for key in ["NetCrafter", "Baseline"] {
        let s = stats
            .iter()
            .find(|s| s.memo_key.contains(key))
            .expect("job ran");
        assert_eq!(s.source, JobSource::Fresh);
        assert_eq!(s.resumed_at, 0);
    }
    assert_eq!(r.prefix_stats().prefix_runs, 1);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn prefix_sharing_composes_with_pdes_threads() {
    // `--threads` parallelism inside each job must not perturb forked
    // results (snapshots are scheduler-portable and PDES is bit-exact).
    let reference = cold_reference();
    let mut r = Runner::quick().with_jobs(2).with_threads(2);
    r.base_cfg.netcrafter.warmup_cycles = WARMUP;
    let results = r.sweep(&jobs_for(&r));
    for (got, want) in results.iter().zip(&reference) {
        assert_eq!(&got.to_kv(), want, "threaded forked run must match cold");
    }
    assert!(r.prefix_stats().forked_jobs >= 1);
}
