//! Integration tests for the sweep runner: parallel execution must be
//! indistinguishable from sequential execution, and the on-disk result
//! cache must survive a process restart (modelled here as a fresh
//! `Runner` over the same directory).

use std::path::PathBuf;
use std::sync::Arc;

use netcrafter_bench::{figures, geomean, JobSource, Runner, Table};
use netcrafter_multigpu::{JobSpec, RunResult, SystemVariant};
use netcrafter_workloads::Workload;

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "netcrafter-runner-test-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A representative job mix: three workloads, several variants, plus a
/// tagged alternate-config job and a duplicate.
fn job_mix(r: &Runner) -> Vec<JobSpec> {
    let mut jobs = Vec::new();
    for w in [Workload::Gups, Workload::Mt, Workload::Spmv] {
        jobs.push(r.job(w, SystemVariant::Baseline));
        jobs.push(r.job(w, SystemVariant::Ideal));
        jobs.push(r.job(w, SystemVariant::NetCrafter));
    }
    let mut cfg8 = r.base_cfg;
    cfg8.flit_bytes = 8;
    jobs.push(r.job_with(Workload::Gups, SystemVariant::Baseline, cfg8, "flit8"));
    jobs.push(r.job(Workload::Gups, SystemVariant::Baseline)); // duplicate
    jobs
}

fn render(results: &[Arc<RunResult>]) -> Vec<String> {
    results.iter().map(|r| r.to_kv()).collect()
}

#[test]
fn parallel_sweep_matches_sequential() {
    let seq = Runner::quick(); // jobs = 1
    let par = Runner::quick().with_jobs(4);
    let seq_results = seq.sweep(&job_mix(&seq));
    let par_results = par.sweep(&job_mix(&par));
    assert_eq!(
        render(&seq_results),
        render(&par_results),
        "4-worker sweep must be bit-identical to the sequential one"
    );
    assert_eq!(seq.runs_completed(), par.runs_completed());
}

#[test]
fn figure_output_is_identical_across_worker_counts() {
    let seq = Runner::quick();
    let par = Runner::quick().with_jobs(4);
    // Prewarm the parallel runner the way the figures binary does; the
    // sequential runner simulates lazily inside the generator.
    par.sweep(&figures::sweep_jobs("fig12", &par));
    let a = figures::generate("fig12", &seq).to_string();
    let b = figures::generate("fig12", &par).to_string();
    assert_eq!(a, b);
}

#[test]
fn disk_cache_survives_restart() {
    let dir = tempdir("restart");

    // First "process": everything is simulated fresh and persisted.
    let first = Runner::quick().with_jobs(2).with_cache_dir(&dir).unwrap();
    let before = first.sweep(&job_mix(&first));
    let stats = first.job_stats();
    assert!(stats.iter().all(|s| s.source == JobSource::Fresh));
    let unique = first.runs_completed();
    // The duplicate and the tagged job share one physical config with the
    // plain GUPS baseline job, so disk may hold fewer entries than the
    // memo — but never zero or more than the memo.
    let on_disk = first.disk_cache().unwrap().len();
    assert!(on_disk > 0 && on_disk <= unique, "{on_disk} vs {unique}");

    // Second "process": same directory, fresh memo. Zero simulations.
    let second = Runner::quick().with_jobs(2).with_cache_dir(&dir).unwrap();
    let after = second.sweep(&job_mix(&second));
    assert_eq!(render(&before), render(&after));
    let stats = second.job_stats();
    assert!(!stats.is_empty());
    assert!(
        stats.iter().all(|s| s.source == JobSource::DiskHit),
        "warm cache must re-simulate nothing: {stats:?}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn jobs_sharing_physical_config_share_disk_entries() {
    let dir = tempdir("shared-key");
    let r = Runner::quick().with_cache_dir(&dir).unwrap();
    // Same physical simulation under two tags: one fresh run, one disk
    // entry, and the second resolves without simulating.
    r.run_with(Workload::Gups, SystemVariant::Baseline, r.base_cfg, "tag-a");
    r.run_with(Workload::Gups, SystemVariant::Baseline, r.base_cfg, "tag-b");
    let stats = r.job_stats();
    assert_eq!(stats.len(), 2);
    assert_eq!(stats[0].source, JobSource::Fresh);
    assert_eq!(stats[1].source, JobSource::DiskHit);
    assert_eq!(r.disk_cache().unwrap().len(), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn geomean_edge_cases() {
    assert_eq!(geomean(&[]), 0.0);
    assert!((geomean(&[7.5]) - 7.5).abs() < 1e-9);
    assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-9);
    // Non-positive inputs are clamped, not NaN/-inf.
    assert!(geomean(&[0.0, 1.0]).is_finite());
    assert!(geomean(&[-3.0]).is_finite());
    // Tiny positive values survive the log-domain round trip.
    let small = geomean(&[1e-9, 1e-9]);
    assert!(small > 0.0 && small < 1e-8);
}

#[test]
fn table_row_edge_cases() {
    // Zero-row table still renders a header and separator.
    let t = Table::new("Empty", vec!["A", "B"]);
    let s = t.to_string();
    assert!(s.contains("### Empty"));
    assert!(s.contains("| A | B |"));

    // Cells wider than headers stretch the column.
    let mut t = Table::new("Wide", vec!["X"]);
    t.row(vec!["a-very-long-cell".into()]);
    assert!(t.to_string().contains("a-very-long-cell"));

    // Width mismatches panic in both directions.
    let wide = std::panic::catch_unwind(|| {
        let mut t = Table::new("T", vec!["A"]);
        t.row(vec!["a".into(), "b".into()]);
    });
    assert!(wide.is_err());
}
