//! Integration tests for sweep warm-starts: a `Runner` given a
//! checkpoint directory must resume each job from the longest cached
//! prefix snapshot and still reproduce the cold run bit for bit.

use std::path::PathBuf;

use netcrafter_bench::Runner;
use netcrafter_multigpu::SystemVariant;
use netcrafter_workloads::Workload;

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "netcrafter-warmstart-test-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn warm_start_reproduces_the_cold_run_and_skips_the_prefix() {
    let dir = tempdir("bit-exact");
    let cold = Runner::quick();
    let cold_result = cold.run(Workload::Gups, SystemVariant::NetCrafter);
    let mid = cold_result.exec_cycles / 2;
    assert!(mid > 0);

    // Seed the store: a fresh runner pauses at the midpoint and persists
    // the snapshot under the job's physical cache key.
    let seeding = Runner::quick()
        .with_checkpoint_dir(&dir)
        .expect("checkpoint dir opens")
        .with_checkpoint_at(mid);
    let seeded = seeding.run(Workload::Gups, SystemVariant::NetCrafter);
    assert_eq!(cold_result.to_kv(), seeded.to_kv());
    let stats = seeding.job_stats();
    assert_eq!(stats.len(), 1);
    assert_eq!(stats[0].resumed_at, 0, "the seeding run itself is cold");

    // A later runner (a process restart, modelled as a fresh Runner over
    // the same directory) warm-starts from the snapshot: same bytes out,
    // but the shared prefix is skipped, which the stats record.
    let warm = Runner::quick()
        .with_checkpoint_dir(&dir)
        .expect("checkpoint dir opens");
    let warm_result = warm.run(Workload::Gups, SystemVariant::NetCrafter);
    assert_eq!(
        cold_result.to_kv(),
        warm_result.to_kv(),
        "warm-start must be bit-identical to the cold run"
    );
    let stats = warm.job_stats();
    assert_eq!(stats.len(), 1);
    assert_eq!(
        stats[0].resumed_at, mid,
        "warm-start must resume from the snapshot's cycle"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unusable_checkpoints_fall_back_to_a_cold_run() {
    let dir = tempdir("fallback");
    let cold = Runner::quick();
    let cold_result = cold.run(Workload::Gups, SystemVariant::NetCrafter);

    // Forge a corrupt snapshot under the job's key prefix: the runner
    // must warn, discard it, and simulate from cycle 0.
    let runner = Runner::quick()
        .with_checkpoint_dir(&dir)
        .expect("checkpoint dir opens");
    let key = runner
        .job(Workload::Gups, SystemVariant::NetCrafter)
        .cache_key();
    let store = runner.checkpoint_store().expect("store configured");
    store.store(&key, 500, b"not a snapshot").expect("writes");

    let result = runner.run(Workload::Gups, SystemVariant::NetCrafter);
    assert_eq!(
        cold_result.to_kv(),
        result.to_kv(),
        "fallback run must match the cold run"
    );
    assert_eq!(runner.job_stats()[0].resumed_at, 0);

    let _ = std::fs::remove_dir_all(&dir);
}
