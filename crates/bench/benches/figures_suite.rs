//! One bench per paper table/figure: each measures a full scaled-down
//! regeneration of that artifact (the paper-scale numbers in
//! EXPERIMENTS.md come from `cargo run --bin figures -- all`).
//!
//! A fresh `Runner` is built per iteration so the measurement reflects
//! real simulation work rather than the memo cache. Runs with the
//! in-tree harness (no criterion — the workspace builds offline):
//! `cargo bench -p netcrafter-bench --features criterion-bench`.

use std::hint::black_box;

use netcrafter_bench::microbench::bench_with_setup;
use netcrafter_bench::{figures, Runner};

fn main() {
    for id in figures::all_ids() {
        bench_with_setup(&format!("figures/{id}"), Runner::quick, |runner| {
            black_box(figures::generate(id, &runner))
        });
    }
}
