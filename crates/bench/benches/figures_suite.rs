//! One criterion bench per paper table/figure: each measures a full
//! scaled-down regeneration of that artifact (the paper-scale numbers in
//! EXPERIMENTS.md come from `cargo run --bin figures -- all`).
//!
//! A fresh `Runner` is built per iteration so the measurement reflects
//! real simulation work rather than the memo cache.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use netcrafter_bench::{figures, Runner};

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    for id in figures::all_ids() {
        group.bench_function(id, |b| {
            b.iter_batched(
                Runner::quick,
                |runner| black_box(figures::generate(id, &runner)),
                BatchSize::PerIteration,
            )
        });
    }
    group.finish();
}

criterion_group!(figure_benches, bench_figures);
criterion_main!(figure_benches);
