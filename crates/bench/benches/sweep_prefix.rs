//! Sweep-execution microbenchmark: wall-clock of a policy-variant sweep
//! resolved cold vs through the prefix-sharing plan tree (in-memory
//! snapshot forks, DESIGN.md §3.7), at one and at four sweep workers.
//! The matrix mirrors `bench_gate --matrix sweep`: three workloads ×
//! baseline + nine policy variants under a 2800-cycle warmup window,
//! where the seven full-line variants share one warmup prefix per
//! workload and the two trimming variants a second (each group's
//! representative forks its paused warmup state in flight).
//!
//! Runs with the in-tree harness (no criterion — the workspace builds
//! offline): `cargo bench -p netcrafter-bench --features criterion-bench`.

use std::hint::black_box;
use std::time::{Duration, Instant};

use netcrafter_bench::Runner;
use netcrafter_multigpu::{JobSpec, SystemVariant};
use netcrafter_workloads::Workload;

/// Knob-activation cycle; before it every variant's trajectory within a
/// fill-roster group is identical, which is what the plan tree shares.
const WARMUP: u64 = 2_800;

fn variants() -> Vec<SystemVariant> {
    vec![
        SystemVariant::Baseline,
        SystemVariant::StitchOnly,
        SystemVariant::SeqOnly,
        SystemVariant::DataPrio,
        SystemVariant::StitchPool {
            window: 16,
            selective: true,
        },
        SystemVariant::StitchPool {
            window: 32,
            selective: true,
        },
        SystemVariant::StitchPool {
            window: 64,
            selective: true,
        },
        SystemVariant::StitchPool {
            window: 32,
            selective: false,
        },
        SystemVariant::StitchTrim,
        SystemVariant::NetCrafter,
    ]
}

fn fresh_runner(jobs: usize, share: bool) -> Runner {
    let mut r = Runner::quick().with_jobs(jobs).with_prefix_share(share);
    r.base_cfg.netcrafter.warmup_cycles = WARMUP;
    r
}

fn matrix(r: &Runner) -> Vec<JobSpec> {
    let mut jobs = Vec::new();
    for w in [Workload::Gups, Workload::Spmv, Workload::Pr] {
        for v in variants() {
            jobs.push(r.job(w, v));
        }
    }
    jobs
}

/// Best-of-N sweep wall-clock on fresh (memo-cold) runners, plus the
/// prefix-hit ratio of the last repetition (deterministic across reps).
fn measure(jobs: usize, share: bool) -> (Duration, f64) {
    let mut best = Duration::MAX;
    let mut ratio = 0.0;
    let mut runs = 0u32;
    let t_all = Instant::now();
    while runs < 10 && (runs < 3 || t_all.elapsed() < Duration::from_millis(2000)) {
        let r = fresh_runner(jobs, share);
        let js = matrix(&r);
        let t0 = Instant::now();
        black_box(r.sweep(&js));
        best = best.min(t0.elapsed());
        ratio = r.prefix_stats().hit_ratio();
        runs += 1;
    }
    (best, ratio)
}

fn main() {
    for jobs in [1usize, 4] {
        let (cold, _) = measure(jobs, false);
        let (shared, ratio) = measure(jobs, true);
        println!(
            "sweep/30_jobs_warmup2800_jobs{jobs}        cold {:>8.1?}   \
             prefix-shared {:>8.1?}   speedup {:>5.2}x   hit ratio {ratio:.2}",
            cold,
            shared,
            cold.as_secs_f64() / shared.as_secs_f64().max(1e-9),
        );
    }
}
