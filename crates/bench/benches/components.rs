//! Component microbenchmarks: the hot paths of the simulator substrate —
//! stitching engine, segmentation/reassembly, tag store, MSHR, page-table
//! walks, and a whole-system cycle.
//!
//! Runs with the in-tree harness (no criterion — the workspace builds
//! offline): `cargo bench -p netcrafter-bench --features criterion-bench`.

use std::hint::black_box;

use netcrafter_bench::microbench::{bench, bench_with_setup};
use netcrafter_core::ClusterQueue;
use netcrafter_mem::{Mshr, TagStore};
use netcrafter_multigpu::{System, SystemVariant};
use netcrafter_net::{EgressQueue, Reassembler, Segmenter};
use netcrafter_proto::{
    AccessId, GpuId, LineAddr, LineMask, MemReq, NetCrafterConfig, NodeId, Origin, Packet,
    PacketId, PacketKind, PacketPayload, SystemConfig, TrafficClass,
};
use netcrafter_vm::PageTable;
use netcrafter_workloads::{Scale, Workload};

fn packet(id: u64, kind: PacketKind) -> Packet {
    let payload = match kind {
        PacketKind::WriteReq | PacketKind::ReadRsp => 64,
        _ => 0,
    };
    Packet {
        id: PacketId(id),
        kind,
        src: NodeId(0),
        dst: NodeId(3),
        payload_bytes: payload,
        trim: None,
        inner: PacketPayload::Req(MemReq {
            access: AccessId(id),
            line: LineAddr(id * 64),
            write: kind == PacketKind::WriteReq,
            mask: LineMask::span(0, 8),
            sectors: 0b1111,
            class: TrafficClass::Data,
            requester: GpuId(0),
            owner: GpuId(2),
            origin: Origin::Cu(0),
        }),
    }
}

fn bench_segmentation() {
    let seg = Segmenter::new(16);
    bench("segmenter/read_rsp_to_5_flits", || {
        seg.segment(black_box(packet(1, PacketKind::ReadRsp)))
    });
    let flits = seg.segment(packet(1, PacketKind::ReadRsp));
    bench_with_setup(
        "reassembler/round_trip_read_rsp",
        || (Reassembler::new(), flits.clone()),
        |(mut r, flits)| {
            for f in flits {
                black_box(r.accept(f));
            }
        },
    );
}

fn bench_cluster_queue() {
    let seg = Segmenter::new(16);
    let mk_flits = || {
        let mut flits = Vec::new();
        for i in 0..64u64 {
            let kind = match i % 4 {
                0 => PacketKind::ReadRsp,
                1 => PacketKind::ReadReq,
                2 => PacketKind::WriteRsp,
                _ => PacketKind::PageTableRsp,
            };
            flits.extend(seg.segment(packet(i, kind)));
        }
        flits
    };
    bench_with_setup(
        "cluster_queue/stitch_drain_64_packets",
        || {
            (
                ClusterQueue::new(NetCrafterConfig::full(), NodeId(9)),
                mk_flits(),
            )
        },
        |(mut q, flits)| {
            let mut now = 0;
            for f in flits {
                q.push(f, now);
                now += 1;
            }
            while q.len() > 0 {
                now += 1;
                black_box(q.pop(now));
            }
        },
    );
}

fn bench_tagstore_and_mshr() {
    let mut ts: TagStore<u16> = TagStore::with_entries(1024, 4);
    let mut i = 0u64;
    bench("tagstore/lookup_insert_4way", || {
        i += 1;
        let key = (i * 2654435761) % 4096;
        if ts.lookup(key, i).is_none() {
            ts.insert(key, 0xf, i);
        }
    });
    let mut m: Mshr<u64> = Mshr::new(32);
    let mut j = 0u64;
    bench("mshr/register_complete", || {
        j += 1;
        let key = j % 16;
        if m.register(key, 0b1111, j) == netcrafter_mem::MshrOutcome::Allocated {
            black_box(m.complete(key));
        }
    });
}

fn bench_page_table() {
    let mut pt = PageTable::new(1 << 24);
    for vpn in 0..4096u64 {
        pt.map(vpn, vpn + 100, GpuId((vpn % 4) as u16));
    }
    let mut vpn = 0u64;
    bench("page_table/walk_reads_full", || {
        vpn = (vpn + 1) % 4096;
        black_box(pt.walk_reads(vpn, 1))
    });
}

fn bench_system_cycle() {
    let cfg = SystemConfig::small(2);
    let kernel = Workload::Gups.generate(&Scale::tiny(), 4, 7);
    bench_with_setup(
        "system/1000_cycles_gups_baseline",
        || System::build(SystemVariant::Baseline.apply(cfg), &kernel),
        |mut sys| {
            sys.engine.run_while(1000, |_| true);
            black_box(sys.engine.cycle())
        },
    );
}

fn main() {
    bench_segmentation();
    bench_cluster_queue();
    bench_tagstore_and_mshr();
    bench_page_table();
    bench_system_cycle();
}
