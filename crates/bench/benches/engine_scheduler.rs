//! Scheduler microbenchmark: host cycles/sec of the cycle engine under the
//! legacy tick-everything scheduler vs the event-driven scheduler, on an
//! idle-heavy workload (where fast-forward and active-set ticking should
//! dominate) and a dense workload (where the event machinery is pure
//! overhead and must stay cheap).
//!
//! Runs with the in-tree harness (no criterion — the workspace builds
//! offline): `cargo bench -p netcrafter-bench --features criterion-bench`.

use std::hint::black_box;
use std::time::{Duration, Instant};

use netcrafter_proto::{Message, NodeId};
use netcrafter_sim::{
    Component, ComponentId, Ctx, Cycle, Engine, EngineBuilder, Partition, SchedulerMode, Wake,
};

/// A message-driven forwarder: sleeps until a message arrives, then relays
/// it onward after a fixed delay. The idle-heavy building block.
struct Relay {
    next: ComponentId,
    delay: u64,
    name: String,
}

impl Component for Relay {
    fn tick(&mut self, ctx: &mut Ctx<'_>) {
        while let Some(msg) = ctx.recv() {
            ctx.send(self.next, msg, self.delay);
        }
    }
    fn busy(&self) -> bool {
        false
    }
    fn name(&self) -> &str {
        &self.name
    }
    fn next_wake(&self, _now: Cycle) -> Wake {
        Wake::OnMessage
    }
}

/// A component with real work every cycle; keeps the default
/// `Wake::EveryCycle` so neither scheduler can skip it.
struct Churn {
    state: u64,
    name: String,
}

impl Component for Churn {
    fn tick(&mut self, _ctx: &mut Ctx<'_>) {
        self.state = (self.state ^ 0x9e37_79b9_7f4a_7c15)
            .wrapping_mul(0xbf58_476d_1ce4_e5b9)
            .rotate_left(31);
    }
    fn busy(&self) -> bool {
        true
    }
    fn name(&self) -> &str {
        &self.name
    }
}

/// A [`Churn`] that quiesces after `left` ticks, doing `rounds` hash mixes
/// per tick. The dense-domain building block: per-tick work is heavy
/// enough that domain parallelism has something to win.
struct BoundedChurn {
    state: u64,
    rounds: u32,
    left: u64,
    name: String,
}

impl Component for BoundedChurn {
    fn tick(&mut self, _ctx: &mut Ctx<'_>) {
        for _ in 0..self.rounds {
            self.state = (self.state ^ 0x9e37_79b9_7f4a_7c15)
                .wrapping_mul(0xbf58_476d_1ce4_e5b9)
                .rotate_left(31);
        }
        self.left = self.left.saturating_sub(1);
    }
    fn busy(&self) -> bool {
        self.left > 0
    }
    fn name(&self) -> &str {
        &self.name
    }
}

/// A [`Relay`] that stops forwarding after `hops` deliveries, so the
/// ring quiesces deterministically.
struct BoundedRelay {
    next: ComponentId,
    delay: u64,
    hops: u64,
    name: String,
}

impl Component for BoundedRelay {
    fn tick(&mut self, ctx: &mut Ctx<'_>) {
        while let Some(msg) = ctx.recv() {
            if self.hops > 0 {
                self.hops -= 1;
                ctx.send(self.next, msg, self.delay);
            }
        }
    }
    fn busy(&self) -> bool {
        false
    }
    fn name(&self) -> &str {
        &self.name
    }
    fn next_wake(&self, _now: Cycle) -> Wake {
        Wake::OnMessage
    }
}

/// Ring of `n` message-driven relays with a single token circulating every
/// `delay` cycles: almost every component is idle on almost every cycle.
fn build_idle_heavy(n: usize, delay: u64, mode: SchedulerMode) -> Engine {
    let mut b = EngineBuilder::new();
    let ids: Vec<ComponentId> = (0..n).map(|_| b.reserve()).collect();
    for (i, &id) in ids.iter().enumerate() {
        b.install(
            id,
            Box::new(Relay {
                next: ids[(i + 1) % n],
                delay,
                name: format!("relay{i}"),
            }),
        );
    }
    let mut e = b.build();
    e.set_scheduler(mode);
    e.inject(
        ids[0],
        Message::Credit {
            from: NodeId(0),
            count: 1,
            link: 0,
        },
        1,
    );
    e
}

/// `n` always-busy components: both schedulers must tick every one of
/// them every cycle.
fn build_dense(n: usize, mode: SchedulerMode) -> Engine {
    let mut b = EngineBuilder::new();
    for i in 0..n {
        b.add(Box::new(Churn {
            state: i as u64,
            name: format!("churn{i}"),
        }));
    }
    let mut e = b.build();
    e.set_scheduler(mode);
    e
}

/// The conservative-parallel target shape: `DENSE_DOMAINS` domains of
/// always-busy churn with a single token crossing a domain boundary every
/// `DOMAIN_DELAY` cycles (dense per-domain work, sparse cross-domain
/// traffic — the multi-GPU cluster profile). `DOMAIN_DELAY` doubles as
/// the partition lookahead, so every epoch runs 64 cycles per domain
/// between barriers.
const DENSE_DOMAINS: usize = 4;
const DOMAIN_DELAY: u64 = 64;
const DENSE_CYCLES: u64 = 20_000;

fn build_dense_domains(threads: usize) -> Engine {
    const CHURN_PER_DOMAIN: usize = 16;
    const ROUNDS: u32 = 128;
    let mut b = EngineBuilder::new();
    let mut domain_of = Vec::new();
    let ring: Vec<ComponentId> = (0..DENSE_DOMAINS).map(|_| b.reserve()).collect();
    for (d, &id) in ring.iter().enumerate() {
        b.install(
            id,
            Box::new(BoundedRelay {
                next: ring[(d + 1) % DENSE_DOMAINS],
                delay: DOMAIN_DELAY,
                hops: DENSE_CYCLES / DOMAIN_DELAY / DENSE_DOMAINS as u64,
                name: format!("ring{d}"),
            }),
        );
        domain_of.push(d);
    }
    for d in 0..DENSE_DOMAINS {
        for i in 0..CHURN_PER_DOMAIN {
            b.add(Box::new(BoundedChurn {
                state: (d * CHURN_PER_DOMAIN + i) as u64,
                rounds: ROUNDS,
                left: DENSE_CYCLES,
                name: format!("churn{d}_{i}"),
            }));
            domain_of.push(d);
        }
    }
    let mut e = b.build();
    if threads > 1 {
        e.set_parallel(Partition::new(domain_of, DOMAIN_DELAY), threads);
    } else {
        e.set_scheduler(SchedulerMode::EventDriven);
    }
    e.inject(
        ring[0],
        Message::Credit {
            from: NodeId(0),
            count: 1,
            link: 0,
        },
        1,
    );
    e
}

/// Runs `build()` → `run_to_quiescence` (the parallel scheduler's entry
/// point) several times and returns the best host cycles/sec.
fn measure_quiesce(mut build: impl FnMut() -> Engine) -> f64 {
    let mut best = Duration::MAX;
    let mut cycles = 0;
    let mut runs = 0u32;
    let t_all = Instant::now();
    while runs < 20 && (runs < 3 || t_all.elapsed() < Duration::from_millis(1500)) {
        let mut e = build();
        let t0 = Instant::now();
        let end = e.run_to_quiescence(2 * DENSE_CYCLES);
        best = best.min(t0.elapsed());
        cycles = black_box(end);
        runs += 1;
    }
    cycles as f64 / best.as_secs_f64()
}

/// Runs `build()` → `run_while(cycles)` several times and returns the best
/// host cycles/sec (minimum wall time is the robust estimator; noise is
/// strictly additive).
fn measure(cycles: Cycle, mut build: impl FnMut() -> Engine) -> f64 {
    let mut best = Duration::MAX;
    let mut runs = 0u32;
    let t_all = Instant::now();
    while runs < 20 && (runs < 3 || t_all.elapsed() < Duration::from_millis(500)) {
        let mut e = build();
        let t0 = Instant::now();
        e.run_while(cycles, |_| true);
        best = best.min(t0.elapsed());
        black_box(e.cycle());
        runs += 1;
    }
    cycles as f64 / best.as_secs_f64()
}

fn report(scenario: &str, cycles: Cycle, mut build: impl FnMut(SchedulerMode) -> Engine) {
    let legacy = measure(cycles, || build(SchedulerMode::Legacy));
    let event = measure(cycles, || build(SchedulerMode::EventDriven));
    println!(
        "engine/{scenario:<34} legacy {:>12.0} cyc/s   event {:>12.0} cyc/s   speedup {:>6.2}x",
        legacy,
        event,
        event / legacy
    );
}

fn main() {
    report("idle_heavy_256_relays_200k", 200_000, |mode| {
        build_idle_heavy(256, 64, mode)
    });
    report("dense_64_churn_20k", 20_000, |mode| build_dense(64, mode));
    let seq = measure_quiesce(|| build_dense_domains(1));
    let par = measure_quiesce(|| build_dense_domains(4));
    println!(
        "engine/{:<34} event {seq:>12.0} cyc/s   par-4 {par:>13.0} cyc/s   speedup {:>6.2}x",
        "dense_4domain_64churn_20k",
        par / seq
    );
}
