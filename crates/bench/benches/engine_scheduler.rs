//! Scheduler microbenchmark: host cycles/sec of the cycle engine under the
//! legacy tick-everything scheduler vs the event-driven scheduler, on an
//! idle-heavy workload (where fast-forward and active-set ticking should
//! dominate) and a dense workload (where the event machinery is pure
//! overhead and must stay cheap).
//!
//! Runs with the in-tree harness (no criterion — the workspace builds
//! offline): `cargo bench -p netcrafter-bench --features criterion-bench`.

use std::hint::black_box;
use std::time::{Duration, Instant};

use netcrafter_proto::{Message, NodeId};
use netcrafter_sim::{
    Component, ComponentId, Ctx, Cycle, Engine, EngineBuilder, SchedulerMode, Wake,
};

/// A message-driven forwarder: sleeps until a message arrives, then relays
/// it onward after a fixed delay. The idle-heavy building block.
struct Relay {
    next: ComponentId,
    delay: u64,
    name: String,
}

impl Component for Relay {
    fn tick(&mut self, ctx: &mut Ctx<'_>) {
        while let Some(msg) = ctx.recv() {
            ctx.send(self.next, msg, self.delay);
        }
    }
    fn busy(&self) -> bool {
        false
    }
    fn name(&self) -> &str {
        &self.name
    }
    fn next_wake(&self, _now: Cycle) -> Wake {
        Wake::OnMessage
    }
}

/// A component with real work every cycle; keeps the default
/// `Wake::EveryCycle` so neither scheduler can skip it.
struct Churn {
    state: u64,
    name: String,
}

impl Component for Churn {
    fn tick(&mut self, _ctx: &mut Ctx<'_>) {
        self.state = (self.state ^ 0x9e37_79b9_7f4a_7c15)
            .wrapping_mul(0xbf58_476d_1ce4_e5b9)
            .rotate_left(31);
    }
    fn busy(&self) -> bool {
        true
    }
    fn name(&self) -> &str {
        &self.name
    }
}

/// Ring of `n` message-driven relays with a single token circulating every
/// `delay` cycles: almost every component is idle on almost every cycle.
fn build_idle_heavy(n: usize, delay: u64, mode: SchedulerMode) -> Engine {
    let mut b = EngineBuilder::new();
    let ids: Vec<ComponentId> = (0..n).map(|_| b.reserve()).collect();
    for (i, &id) in ids.iter().enumerate() {
        b.install(
            id,
            Box::new(Relay {
                next: ids[(i + 1) % n],
                delay,
                name: format!("relay{i}"),
            }),
        );
    }
    let mut e = b.build();
    e.set_scheduler(mode);
    e.inject(
        ids[0],
        Message::Credit {
            from: NodeId(0),
            count: 1,
        },
        1,
    );
    e
}

/// `n` always-busy components: both schedulers must tick every one of
/// them every cycle.
fn build_dense(n: usize, mode: SchedulerMode) -> Engine {
    let mut b = EngineBuilder::new();
    for i in 0..n {
        b.add(Box::new(Churn {
            state: i as u64,
            name: format!("churn{i}"),
        }));
    }
    let mut e = b.build();
    e.set_scheduler(mode);
    e
}

/// Runs `build()` → `run_while(cycles)` several times and returns the best
/// host cycles/sec (minimum wall time is the robust estimator; noise is
/// strictly additive).
fn measure(cycles: Cycle, mut build: impl FnMut() -> Engine) -> f64 {
    let mut best = Duration::MAX;
    let mut runs = 0u32;
    let t_all = Instant::now();
    while runs < 20 && (runs < 3 || t_all.elapsed() < Duration::from_millis(500)) {
        let mut e = build();
        let t0 = Instant::now();
        e.run_while(cycles, |_| true);
        best = best.min(t0.elapsed());
        black_box(e.cycle());
        runs += 1;
    }
    cycles as f64 / best.as_secs_f64()
}

fn report(scenario: &str, cycles: Cycle, mut build: impl FnMut(SchedulerMode) -> Engine) {
    let legacy = measure(cycles, || build(SchedulerMode::Legacy));
    let event = measure(cycles, || build(SchedulerMode::EventDriven));
    println!(
        "engine/{scenario:<34} legacy {:>12.0} cyc/s   event {:>12.0} cyc/s   speedup {:>6.2}x",
        legacy,
        event,
        event / legacy
    );
}

fn main() {
    report("idle_heavy_256_relays_200k", 200_000, |mode| {
        build_idle_heavy(256, 64, mode)
    });
    report("dense_64_churn_20k", 20_000, |mode| build_dense(64, mode));
}
